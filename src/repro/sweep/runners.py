"""Pluggable sweep executors: in-process serial and process-pool parallel.

Both runners share one contract: ``run(points)`` evaluates every
:class:`~repro.sweep.spec.SweepPoint` and returns one
:class:`~repro.sweep.record.PointRecord` per point, **in input order**, while
an optional ``on_result`` callback observes records as they complete.

Runners additionally participate in the campaign event stream: when a
:attr:`Runner.event_sink` is installed (the campaign engine points it at its
:class:`~repro.sweep.events.EventBus`), every point publishes a
:class:`~repro.sweep.events.PointStarted` event when a worker actually
begins evaluating it and a :class:`~repro.sweep.events.PointCompleted` event
when its record lands — always from the parent process, so observers never
cross a process boundary.  Start events carry true attribution (worker pid,
wall-clock begin timestamp, worker-local sequence number): the evaluating
process stamps them into ``PointRecord.meta`` (``worker``/``started_ts``/
``finished_ts``/``worker_seq``), and the pool runner re-emits faithful
``PointStarted`` events from those stamps when the chunk ships back —
*never* at submit time, so event order and ETAs reflect actual execution.
Per record the order is: ``PointStarted`` … ``on_result`` →
``PointCompleted``; ``on_result`` runs first so legacy callback wrappers
(e.g. crash-injection test runners) still gate what the event stream sees.

The :class:`ProcessPoolRunner` shards the point list into contiguous chunks
and ships whole chunks to workers.  Three things make this fast:

* evaluation happens entirely in the worker — including :func:`compile`,
  which dominates broad analytic sweeps — so the parent only unpickles slim
  records;
* pool workers live for the whole run and keep their module-global plan
  cache warm, and chunking keeps points that share a compiled design (e.g.
  the smache/baseline pair of one problem) on the same worker;
* by default chunk boundaries are **cost-aware**: chunks are cut so each
  carries a similar predicted compile cost (proportional to grid cells, see
  :func:`point_cost_weight`) instead of a similar point *count*, so one
  million-cell problem no longer straggles a worker that also drew a dozen
  cheap points.  An explicit ``chunksize`` restores fixed-size sharding.

Each record's ``meta`` carries the worker pid and that worker's cumulative
plan-cache counters, so :class:`~repro.sweep.campaign.CampaignResult` can
report cache behaviour across the whole pool.

Both runners additionally own the **analytic fast lane**: maximal runs of
consecutive ``analytic`` points (the common case — the spec expands backends
innermost) are compiled via :func:`~repro.pipeline.compile.compile_batch`
and priced in a single vectorized call
(:mod:`repro.pipeline.analytic_batch`), bitwise-equal per point to the
scalar path, with faithful per-point events and ``batch_size`` /
``batch_index`` attribution stamps in ``meta``.  ``REPRO_ANALYTIC_BATCH=0``
disables the lane; canonical campaign output is byte-identical either way.

Installing a :class:`~repro.faults.policy.RetryPolicy` on a runner (the
campaign engine does this through the :attr:`Runner.retry_policy` seam)
switches both runners to **fault-tolerant** execution: failed attempts are
classified and retried with deterministic backoff, stragglers past the
policy deadline are abandoned and re-issued, a broken worker pool is
respawned with its in-flight points re-enqueued, and points that repeatedly
crash the pool are quarantined as failure records instead of aborting the
campaign.  Retrying forces the scalar path (one failure domain per point);
canonical output is unchanged by the lane's bitwise-equality contract.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.context import clear_point_context, set_point_context
from repro.faults.policy import RetryPolicy
from repro.pipeline.backends import AnalyticBackend, get_backend
from repro.pipeline.cache import CacheInfo, plan_cache
from repro.pipeline.compile import compile as compile_problem
from repro.pipeline.compile import compile_batch
from repro.sweep.events import (
    EventSink,
    PointCompleted,
    PointFailed,
    PointRetried,
    PointStarted,
    PoolRestarted,
    WorkerLost,
)
from repro.sweep.record import PointRecord
from repro.sweep.spec import SweepPoint

#: Callback observing each record as it completes (legacy checkpoint hook).
ResultCallback = Callable[[PointRecord], None]


def _cache_meta(baseline: Optional[CacheInfo] = None) -> Dict[str, int]:
    """Plan-cache counters relative to ``baseline`` (absolute when None)."""
    info = plan_cache.cache_info()
    hits, misses = info.hits, info.misses
    if baseline is not None:
        hits -= baseline.hits
        misses -= baseline.misses
    return {"cache_hits": hits, "cache_misses": misses, "cache_size": info.currsize}


#: Worker-local evaluation counter (reset when the pid changes: a forked
#: worker inherits the parent's value, but its own sequence starts at 0).
_WORKER_SEQ = 0
_SEQ_PID: Optional[int] = None


def _begin_stamp() -> Dict[str, Any]:
    """Attribution stamps taken when an evaluation actually begins.

    Stamped *in the evaluating process* (pool worker or the in-process
    loop), shipped back inside ``PointRecord.meta`` and re-emitted as
    :class:`PointStarted` attribution — the durable record of who ran what,
    when.
    """
    global _WORKER_SEQ, _SEQ_PID
    pid = os.getpid()
    if _SEQ_PID != pid:
        _SEQ_PID = pid
        _WORKER_SEQ = 0
    _WORKER_SEQ += 1
    # repro: allow[determinism] attribution stamp — lands in record.meta, never in canonical bytes
    return {"worker": pid, "started_ts": time.time(), "worker_seq": _WORKER_SEQ}


def _evaluate_point(
    point: SweepPoint,
    keep_result: bool,
    cache_baseline: Optional[CacheInfo] = None,
    strip_artifacts: bool = False,
    run_index: int = 0,
    stamp: Optional[Dict[str, Any]] = None,
    attempt: int = 1,
) -> PointRecord:
    """Evaluate one point against this process's warm plan cache.

    The point's identity (key, label, attempt) is published to the
    per-process fault context for the duration of the backend call, so a
    fault-injection harness (:mod:`repro.faults.inject`) can key its
    schedule on exactly which evaluation is in flight.
    """
    if stamp is None:
        stamp = _begin_stamp()
    set_point_context(point.key(), point.display_label, attempt)
    try:
        t0 = time.perf_counter()
        design = compile_problem(point.problem)
        t1 = time.perf_counter()
        result = get_backend(point.backend).evaluate(design, point.request)
        t2 = time.perf_counter()
    finally:
        clear_point_context()
    if keep_result and strip_artifacts:
        # Live simulation objects do not belong on the wire; metrics, the
        # design and the output grid survive the process boundary.
        result = replace(result, artifacts={})
    meta = {
        "wall_seconds": t2 - t0,
        # Backend time alone, excluding (possibly cold) compilation — what
        # e.g. the E5 speedup column compares between backends.
        "eval_seconds": t2 - t1,
        "run": run_index,
        **stamp,
        "finished_ts": time.time(),  # repro: allow[determinism] attribution stamp in meta only
    }
    if result.perf:
        # Backend performance telemetry (the simulate backend's scheduler
        # counters) rides in meta: visible to PointCompleted observers and
        # checkpoints, excluded from the canonical determinism contract.
        meta.update(result.perf)
    if attempt > 1:
        # Only retried successes carry the counter, so clean-run meta is
        # byte-identical with and without a retry policy installed.
        meta["attempts"] = attempt
    meta.update(_cache_meta(cache_baseline))
    return PointRecord.from_result(
        point.key(),
        point.display_label,
        result,
        rung=point.rung,
        meta=meta,
        keep_result=keep_result,
    )


# --------------------------------------------------------------------------- #
# analytic fast lane
# --------------------------------------------------------------------------- #
#: Minimum consecutive analytic points for the vectorized lane; single points
#: stay on the scalar reference path.
_MIN_BATCH = 2


def _fast_lane_ready() -> bool:
    """Whether batched pricing may replace the scalar loop in this process.

    Requires the ``analytic`` registry slot to hold exactly
    :class:`AnalyticBackend` — not a subclass or stand-in; either may
    override ``evaluate``, which the lane would silently bypass — and the
    ``REPRO_ANALYTIC_BATCH`` switch to be on.
    """
    from repro.pipeline.analytic_batch import batching_enabled

    if not batching_enabled():
        return False
    try:
        return type(get_backend("analytic")) is AnalyticBackend
    except KeyError:
        return False


def _split_spans(points: Sequence[SweepPoint]) -> List[Tuple[str, List[SweepPoint]]]:
    """Cut a point list into ``('batch', run)`` / ``('scalar', run)`` spans.

    Maximal runs of at least :data:`_MIN_BATCH` consecutive analytic points
    become batch spans — the spec expands backends innermost, so analytic
    campaigns arrive as one long run per chunk; everything else (other
    backends, lone analytic points) stays on the per-point reference path.
    """
    points = list(points)
    if not points or not _fast_lane_ready():
        return [("scalar", points)] if points else []
    spans: List[Tuple[str, List[SweepPoint]]] = []
    run: List[SweepPoint] = []
    run_analytic = False

    def close() -> None:
        if run:
            kind = "batch" if run_analytic and len(run) >= _MIN_BATCH else "scalar"
            spans.append((kind, list(run)))
            run.clear()

    for point in points:
        analytic = point.backend == "analytic"
        if run and analytic != run_analytic:
            close()
        run_analytic = analytic
        run.append(point)
    close()
    return spans


def _price_analytic_span(
    points: Sequence[SweepPoint],
    keep_results: bool,
    cache_baseline: Optional[CacheInfo],
    strip_artifacts: bool,
    run_index: int,
    stamps: Sequence[Dict[str, Any]],
) -> List[PointRecord]:
    """Price one contiguous analytic span in a single vectorized call.

    Compilation goes through :func:`compile_batch` (one plan-cache miss plus
    N−1 hits for a shared design), pricing through the registered backend's
    :meth:`~repro.pipeline.backends.Backend.evaluate_many`.  Each record gets
    the caller's per-point begin stamp plus batch attribution
    (``batch_size``/``batch_index``) in ``meta``; timing meta carries each
    point's share of the batch wall clock, keeping per-point throughput
    readings comparable with the scalar path.
    """
    t0 = time.perf_counter()
    designs = compile_batch([p.problem for p in points])
    t1 = time.perf_counter()
    results = get_backend("analytic").evaluate_many(
        [(design, point.request) for design, point in zip(designs, points)],
        with_artifacts=keep_results and not strip_artifacts,
    )
    t2 = time.perf_counter()
    eval_share = (t2 - t1) / len(points)
    wall_share = (t2 - t0) / len(points)
    finished_ts = time.time()  # repro: allow[determinism] attribution stamp in meta only
    cache_counters = _cache_meta(cache_baseline)
    records = []
    for index, (point, result) in enumerate(zip(points, results)):
        meta = {
            "wall_seconds": wall_share,
            "eval_seconds": eval_share,
            "run": run_index,
            **stamps[index],
            "finished_ts": finished_ts,
            "batch_size": len(points),
            "batch_index": index,
        }
        meta.update(cache_counters)
        records.append(
            PointRecord.from_result(
                point.key(),
                point.display_label,
                result,
                rung=point.rung,
                meta=meta,
                keep_result=keep_results,
            )
        )
    return records


#: First-use snapshot of this process's plan-cache counters.  A forked worker
#: inherits the parent's counters (and possibly a warm cache); subtracting
#: the snapshot makes reported stats mean "work done by this worker".
_WORKER_BASELINE: Optional[CacheInfo] = None
_WORKER_PID: Optional[int] = None


def _worker_cache_baseline() -> CacheInfo:
    global _WORKER_BASELINE, _WORKER_PID
    pid = os.getpid()
    if _WORKER_PID != pid:
        _WORKER_PID = pid
        _WORKER_BASELINE = plan_cache.cache_info()
    return _WORKER_BASELINE


def _evaluate_chunk(args: Tuple[Sequence[SweepPoint], bool, int]) -> List[PointRecord]:
    """Worker entry point: evaluate one contiguous shard of the sweep.

    Analytic runs inside the chunk take the vectorized fast lane — the whole
    span is priced in one call — while every point still gets its own begin
    stamp, so the parent's replayed ``PointStarted`` events stay faithful.
    """
    points, keep_results, run_index = args
    baseline = _worker_cache_baseline()
    records: List[PointRecord] = []
    for kind, span in _split_spans(points):
        if kind == "batch":
            stamps = [_begin_stamp() for _ in span]
            records.extend(
                _price_analytic_span(
                    span, keep_results, baseline, True, run_index, stamps
                )
            )
        else:
            records.extend(
                _evaluate_point(
                    p,
                    keep_result=keep_results,
                    cache_baseline=baseline,
                    strip_artifacts=True,
                    run_index=run_index,
                )
                for p in span
            )
    return records


# --------------------------------------------------------------------------- #
# fault-tolerant evaluation
# --------------------------------------------------------------------------- #
@dataclass
class PointError:
    """A failed evaluation attempt, shipped from worker to parent.

    Exceptions themselves do not reliably survive pickling, so workers never
    re-raise: they classify the failure *where the exception type exists*
    (against the shipped :class:`RetryPolicy`) and return this slim marker in
    the record's place.  Retry scheduling stays entirely parent-side.
    """

    key: str
    label: str
    rung: int
    error: str  #: "ExceptionType: message"
    attempt: int  #: the attempt that failed (1-based)
    retryable: bool  #: the worker-side policy verdict
    worker: Optional[int] = None
    started_ts: Optional[float] = None
    worker_seq: Optional[int] = None


def _failure_record(
    point: SweepPoint, error: str, attempts: int, run_index: int
) -> PointRecord:
    """The permanent failure record for a point whose retries are exhausted."""
    return PointRecord.failure(
        key=point.key(),
        label=point.display_label,
        backend=point.backend,
        system=point.request.system,
        iterations=point.request.iterations,
        rung=point.rung,
        error=error,
        attempts=attempts,
        meta={"run": run_index},
    )


def _evaluate_chunk_tolerant(
    args: Tuple[Sequence[SweepPoint], bool, int, RetryPolicy, Sequence[int]],
) -> List[Any]:
    """Worker entry point of the fault-tolerant pool path.

    Unlike :func:`_evaluate_chunk` this never takes the vectorized fast lane
    (one fault decision and one failure domain per point) and never lets an
    evaluation exception escape: failed points come back as
    :class:`PointError` markers, successes as records, in input order.
    Retrying is the parent's job — a worker that retried locally would hide
    attempt counts from the event stream.
    """
    points, keep_results, run_index, policy, attempts = args
    baseline = _worker_cache_baseline()
    out: List[Any] = []
    for point, attempt in zip(points, attempts):
        stamp = _begin_stamp()
        try:
            out.append(
                _evaluate_point(
                    point,
                    keep_result=keep_results,
                    cache_baseline=baseline,
                    strip_artifacts=True,
                    run_index=run_index,
                    stamp=stamp,
                    attempt=attempt,
                )
            )
        except Exception as exc:
            out.append(
                PointError(
                    key=point.key(),
                    label=point.display_label,
                    rung=point.rung,
                    error=f"{type(exc).__name__}: {exc}",
                    attempt=attempt,
                    retryable=policy.classify(exc),
                    worker=stamp.get("worker"),
                    started_ts=stamp.get("started_ts"),
                    worker_seq=stamp.get("worker_seq"),
                )
            )
    return out


# --------------------------------------------------------------------------- #
# cost-aware chunking
# --------------------------------------------------------------------------- #
def point_cost_weight(point: SweepPoint) -> float:
    """Predicted evaluation cost of one point, for load balancing.

    Compilation dominates broad sweeps and its planning/partitioning work
    scales with the number of grid cells, so the cell count is the weight.
    Points whose cost cannot be read default to weight 1, never 0 — every
    point must contribute to a chunk's budget.
    """
    try:
        return float(point.problem.grid.size) or 1.0
    except (AttributeError, TypeError):
        return 1.0


def cost_balanced_chunks(
    points: Sequence[SweepPoint],
    n_chunks: int,
    weight: Callable[[SweepPoint], float] = point_cost_weight,
) -> List[List[SweepPoint]]:
    """Cut ``points`` into at most ``n_chunks`` contiguous, cost-balanced runs.

    Contiguity is deliberate: adjacent points typically share a compiled
    design (the spec expands backends × systems innermost), and keeping them
    in one chunk keeps them on one worker's warm plan cache.  A chunk closes
    once it holds its fair share of the *remaining* weight — so one giant
    problem fills a chunk alone while cheap points pack together — but a cut
    is deferred while the next point belongs to the same problem; fewer
    chunks beats splitting a design across two workers' caches.
    """
    points = list(points)
    if not points:
        return []
    n_chunks = max(1, min(n_chunks, len(points)))
    weights = [max(weight(p), 1e-9) for p in points]
    remaining = sum(weights)
    chunks: List[List[SweepPoint]] = []
    current: List[SweepPoint] = []
    current_weight = 0.0
    for index, (point, w) in enumerate(zip(points, weights)):
        current.append(point)
        current_weight += w
        remaining -= w
        chunks_after = n_chunks - len(chunks) - 1  # chunks still to fill
        points_left = len(points) - index - 1
        if chunks_after == 0 or points_left == 0:
            continue  # the last chunk takes everything left
        fair_share = (current_weight + remaining) / (chunks_after + 1)
        splits_problem = points[index + 1].problem == point.problem
        if current_weight >= fair_share and not splits_problem:
            chunks.append(current)
            current = []
            current_weight = 0.0
    if current:
        chunks.append(current)
    return chunks


# --------------------------------------------------------------------------- #
# runners
# --------------------------------------------------------------------------- #
class Runner:
    """Base class: execute sweep points, preserving input order.

    Each ``run()`` invocation gets a fresh index, recorded in every record's
    ``meta["run"]``: cache counters are cumulative *within* one invocation,
    so aggregation must distinguish invocations (a multi-rung strategy calls
    ``run()`` once per rung, possibly reusing worker pids).

    When :attr:`event_sink` is set (the campaign engine installs its event
    bus there), the runner publishes :class:`PointStarted` /
    :class:`PointCompleted` events from the parent process.  The attribute
    seam — rather than a ``run()`` parameter — keeps every subclass that
    overrides ``run()`` with the historical signature working unchanged.
    """

    #: Degree of parallelism the runner provides.
    jobs: int = 1

    #: Where to publish run events (installed by the campaign engine).
    event_sink: Optional[EventSink] = None

    #: Retry/deadline policy (installed by the campaign engine, like
    #: :attr:`event_sink`).  ``None`` keeps the historical fail-fast
    #: behaviour: the first evaluation exception propagates.
    retry_policy: Optional[RetryPolicy] = None

    def _next_run_index(self) -> int:
        # Lazy so Runner subclasses need not chain __init__.
        self._run_counter = getattr(self, "_run_counter", 0) + 1
        return self._run_counter

    def run(
        self,
        points: Sequence[SweepPoint],
        on_result: Optional[ResultCallback] = None,
        keep_results: bool = False,
    ) -> List[PointRecord]:
        """Evaluate every point (must be overridden)."""
        raise NotImplementedError


def _emit_started(
    sink: Optional[EventSink], point: SweepPoint, stamp: Dict[str, Any]
) -> None:
    """Publish a start with live attribution (the in-process path)."""
    if sink is not None:
        sink(
            PointStarted(
                key=point.key(),
                label=point.display_label,
                rung=point.rung,
                worker=stamp.get("worker"),
                ts=stamp.get("started_ts"),
                seq=stamp.get("worker_seq"),
            )
        )


def _emit_started_from_record(sink: Optional[EventSink], record: PointRecord) -> None:
    """Re-emit a worker's begin stamp as a faithful :class:`PointStarted`.

    The pool runner cannot publish when the worker begins (observers live in
    the parent), so the worker stamps ``meta`` and the parent replays the
    start from those stamps once the chunk ships back — attribution is true
    even though delivery is deferred.
    """
    if sink is not None:
        meta = record.meta
        sink(
            PointStarted(
                key=record.key,
                label=record.label,
                rung=record.rung,
                worker=meta.get("worker"),
                ts=meta.get("started_ts"),
                seq=meta.get("worker_seq"),
            )
        )


def _emit_completed(sink: Optional[EventSink], record: PointRecord) -> None:
    if sink is not None:
        sink(PointCompleted(record=record))


def _run_in_process(
    points: Sequence[SweepPoint],
    on_result: Optional[ResultCallback],
    keep_results: bool,
    strip_artifacts: bool,
    run_index: int,
    event_sink: Optional[EventSink] = None,
) -> List[PointRecord]:
    """The shared in-process loop of SerialRunner and the pool's 1-job fallback.

    Analytic spans are priced through the vectorized fast lane: every point
    in the span is stamped and its ``PointStarted`` published *before* the
    single pricing call (they do all begin there), completions follow
    per point in input order once the span lands.
    """
    baseline = plan_cache.cache_info()
    records = []
    for kind, span in _split_spans(points):
        if kind == "batch":
            stamps = []
            for point in span:
                stamp = _begin_stamp()
                stamps.append(stamp)
                _emit_started(event_sink, point, stamp)
            span_records = _price_analytic_span(
                span, keep_results, baseline, strip_artifacts, run_index, stamps
            )
            for record in span_records:
                records.append(record)
                if on_result is not None:
                    on_result(record)
                _emit_completed(event_sink, record)
            continue
        for point in span:
            stamp = _begin_stamp()
            _emit_started(event_sink, point, stamp)
            record = _evaluate_point(
                point,
                keep_result=keep_results,
                cache_baseline=baseline,
                strip_artifacts=strip_artifacts,
                run_index=run_index,
                stamp=stamp,
            )
            records.append(record)
            if on_result is not None:
                on_result(record)
            _emit_completed(event_sink, record)
    return records


def _run_in_process_tolerant(
    points: Sequence[SweepPoint],
    on_result: Optional[ResultCallback],
    keep_results: bool,
    strip_artifacts: bool,
    run_index: int,
    event_sink: Optional[EventSink],
    policy: RetryPolicy,
) -> List[PointRecord]:
    """The in-process loop under a retry policy: retry, back off, or fail.

    Deliberately scalar (no analytic fast lane): retrying demands one
    failure domain per point.  Per the lane's bitwise-equality contract the
    canonical output is identical either way.  Each attempt gets its own
    begin stamp and :class:`PointStarted`; a retryable failure publishes
    :class:`PointRetried` and sleeps the policy's deterministic backoff; an
    exhausted or fatal one lands a failure record and :class:`PointFailed`
    (``on_result`` observes successes only).
    """
    baseline = plan_cache.cache_info()
    records: List[PointRecord] = []
    for point in points:
        key = point.key()
        for attempt in range(1, policy.max_attempts + 1):
            stamp = _begin_stamp()
            _emit_started(event_sink, point, stamp)
            try:
                record = _evaluate_point(
                    point,
                    keep_result=keep_results,
                    cache_baseline=baseline,
                    strip_artifacts=strip_artifacts,
                    run_index=run_index,
                    stamp=stamp,
                    attempt=attempt,
                )
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                if policy.classify(exc) and attempt < policy.max_attempts:
                    delay = policy.delay_s(key, attempt)
                    if event_sink is not None:
                        event_sink(
                            PointRetried(
                                key=key,
                                label=point.display_label,
                                rung=point.rung,
                                attempt=attempt,
                                error=error,
                                delay_s=delay,
                                reason="error",
                                worker=stamp.get("worker"),
                            )
                        )
                    if delay > 0:
                        time.sleep(delay)
                    continue
                failure = _failure_record(point, error, attempt, run_index)
                records.append(failure)
                if event_sink is not None:
                    event_sink(PointFailed(record=failure))
                break
            records.append(record)
            if on_result is not None:
                on_result(record)
            _emit_completed(event_sink, record)
            break
    return records


class SerialRunner(Runner):
    """The in-process reference executor: one point after another."""

    jobs = 1

    def __init__(self, retry_policy: Optional[RetryPolicy] = None) -> None:
        self.retry_policy = retry_policy

    def run(
        self,
        points: Sequence[SweepPoint],
        on_result: Optional[ResultCallback] = None,
        keep_results: bool = False,
    ) -> List[PointRecord]:
        if self.retry_policy is not None:
            return _run_in_process_tolerant(
                points,
                on_result,
                keep_results,
                strip_artifacts=False,
                run_index=self._next_run_index(),
                event_sink=self.event_sink,
                policy=self.retry_policy,
            )
        return _run_in_process(
            points,
            on_result,
            keep_results,
            strip_artifacts=False,
            run_index=self._next_run_index(),
            event_sink=self.event_sink,
        )


class ProcessPoolRunner(Runner):
    """Chunked sharding over a :class:`concurrent.futures.ProcessPoolExecutor`.

    Parameters
    ----------
    jobs:
        Worker process count.
    chunksize:
        Points per shard.  When given, chunks are fixed-size (the historical
        behaviour); when ``None`` (the default) the point list is cut into
        about four **cost-balanced** shards per worker, weighted by predicted
        compile cost (:func:`point_cost_weight`), so a single giant problem
        does not straggle one worker while the rest idle.
    start_method:
        Multiprocessing start method; defaults to ``fork`` where available
        (cheap on Linux), otherwise the platform default.
    """

    def __init__(
        self,
        jobs: int = 2,
        chunksize: Optional[int] = None,
        start_method: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be positive")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be positive")
        self.jobs = jobs
        self.chunksize = chunksize
        self.retry_policy = retry_policy
        if start_method is None and "fork" in multiprocessing.get_all_start_methods():
            start_method = "fork"
        self.start_method = start_method

    def _context(self):
        if self.start_method is None:
            return None
        return multiprocessing.get_context(self.start_method)

    def _chunk(self, points: List[SweepPoint], jobs: int) -> List[List[SweepPoint]]:
        """Shard the point list: fixed-size when asked, cost-balanced otherwise."""
        if self.chunksize is not None:
            return [
                points[i : i + self.chunksize]
                for i in range(0, len(points), self.chunksize)
            ]
        return cost_balanced_chunks(points, n_chunks=jobs * 4)

    def run(
        self,
        points: Sequence[SweepPoint],
        on_result: Optional[ResultCallback] = None,
        keep_results: bool = False,
    ) -> List[PointRecord]:
        points = list(points)
        if not points:
            return []
        run_index = self._next_run_index()
        jobs = min(self.jobs, len(points))
        if jobs == 1:
            # In-process fallback honouring the parallel contract: same run
            # tagging, and artifacts stripped exactly as the workers would.
            if self.retry_policy is not None:
                return _run_in_process_tolerant(
                    points,
                    on_result,
                    keep_results,
                    strip_artifacts=True,
                    run_index=run_index,
                    event_sink=self.event_sink,
                    policy=self.retry_policy,
                )
            return _run_in_process(
                points,
                on_result,
                keep_results,
                strip_artifacts=True,
                run_index=run_index,
                event_sink=self.event_sink,
            )
        if self.retry_policy is not None:
            return self._run_tolerant(
                points, on_result, keep_results, run_index, jobs
            )
        chunks = self._chunk(points, jobs)
        by_chunk: Dict[int, List[PointRecord]] = {}
        with ProcessPoolExecutor(max_workers=jobs, mp_context=self._context()) as pool:
            futures = {
                pool.submit(_evaluate_chunk, (chunk, keep_results, run_index)): index
                for index, chunk in enumerate(chunks)
            }
            for future in as_completed(futures):
                records = future.result()
                by_chunk[futures[future]] = records
                # Starts are deliberately NOT published at submit time: the
                # worker's begin stamps ride back in each record's meta and
                # are replayed here, in true execution order within the
                # chunk, so starts attribute and interleave faithfully.
                for record in records:
                    _emit_started_from_record(self.event_sink, record)
                    if on_result is not None:
                        on_result(record)
                    _emit_completed(self.event_sink, record)
        return [record for index in range(len(chunks)) for record in by_chunk[index]]

    # ------------------------------------------------------------------ #
    # fault-tolerant execution
    # ------------------------------------------------------------------ #
    def _run_tolerant(
        self,
        points: List[SweepPoint],
        on_result: Optional[ResultCallback],
        keep_results: bool,
        run_index: int,
        jobs: int,
    ) -> List[PointRecord]:
        """The hardened pool path: retries, deadlines, crash recovery.

        State machine, parent-side only (workers never retry):

        * Every in-flight chunk carries its points' 1-based attempt numbers
          and (when the policy sets ``deadline_s``) a cumulative wall-clock
          deadline.  Expired chunks are *abandoned* — not cancelled, a
          running future cannot be — their unresolved points re-issued
          immediately as singletons; results are first-completion-wins, so
          a straggler that eventually lands is simply ignored.  When every
          worker is wedged on an abandoned chunk the pool is replaced
          outright to reclaim capacity.
        * A :class:`BrokenExecutor` takes down every in-flight future at
          once.  The pool is respawned (:class:`WorkerLost` +
          :class:`PoolRestarted` events) and unresolved in-flight points
          re-issued — but each also collects a *crash blame*, because the
          parent cannot know which of the co-scheduled points killed the
          worker.  Enough blames put a point on **probation**: it runs
          *solo*, with nothing else in flight.  A solo crash is certain
          guilt — the point is quarantined as failed ("poison") instead of
          killing the campaign; a solo success clears its blames
          (co-scheduled innocents walk free).
        * Ordinary retryable failures come back as :class:`PointError`
          markers and re-enter through a ready-time heap after the policy's
          deterministic backoff.
        """
        policy = self.retry_policy
        sink = self.event_sink
        resolved: Dict[str, PointRecord] = {}
        tries: Dict[str, int] = {}  # attempts submitted so far, per key
        blames: Dict[str, int] = {}  # pool-break co-blames, per key
        retry_heap: List[Tuple[float, int, SweepPoint]] = []  # (ready, seq, p)
        heap_seq = itertools.count()
        probation: "deque[SweepPoint]" = deque()
        restarts = 0

        @dataclass
        class _Inflight:
            points: List[SweepPoint]
            attempts: List[int]
            deadline: Optional[float]
            solo: bool = False
            abandoned: bool = False

        inflight: Dict[Any, _Inflight] = {}
        pool = ProcessPoolExecutor(max_workers=jobs, mp_context=self._context())

        # -------------------------------------------------------------- #
        def respawn(reason: str) -> None:
            nonlocal pool, restarts
            restarts += 1
            _terminate_pool(pool)
            pool = ProcessPoolExecutor(max_workers=jobs, mp_context=self._context())
            if sink is not None:
                sink(PoolRestarted(restarts=restarts, jobs=jobs, reason=reason))

        def submit(chunk: List[SweepPoint], solo: bool = False) -> None:
            attempts = []
            for p in chunk:
                key = p.key()
                tries[key] = tries.get(key, 0) + 1
                attempts.append(tries[key])
            deadline = None
            if policy.deadline_s is not None:
                deadline = time.monotonic() + policy.deadline_s * len(chunk)
            for _ in range(2):
                try:
                    future = pool.submit(
                        _evaluate_chunk_tolerant,
                        (chunk, keep_results, run_index, policy, attempts),
                    )
                    break
                except BrokenExecutor as exc:
                    # The pool died between deliveries (nothing of ours was
                    # in flight, or it would have surfaced via a future):
                    # replace it and submit again.
                    respawn(f"{type(exc).__name__}: {exc}")
            else:  # pragma: no cover - two consecutive dead-on-arrival pools
                raise RuntimeError("worker pool died immediately after respawn")
            inflight[future] = _Inflight(
                points=list(chunk), attempts=attempts, deadline=deadline, solo=solo
            )

        def deliver(record: PointRecord) -> None:
            resolved[record.key] = record
            blames.pop(record.key, None)
            _emit_started_from_record(sink, record)
            if on_result is not None:
                on_result(record)
            _emit_completed(sink, record)

        def fail(point: SweepPoint, error: str, attempts: int) -> None:
            record = _failure_record(point, error, attempts, run_index)
            resolved[record.key] = record
            if sink is not None:
                sink(PointFailed(record=record))

        def reissue(point: SweepPoint, delay: float) -> None:
            heapq.heappush(
                retry_heap, (time.monotonic() + delay, next(heap_seq), point)
            )

        def handle_error(point: SweepPoint, item: PointError) -> None:
            if sink is not None:
                # The attempt did begin in a worker: replay its start stamp
                # so the stream stays faithful even for failed attempts.
                sink(
                    PointStarted(
                        key=item.key,
                        label=item.label,
                        rung=item.rung,
                        worker=item.worker,
                        ts=item.started_ts,
                        seq=item.worker_seq,
                    )
                )
            if item.retryable and item.attempt < policy.max_attempts:
                delay = policy.delay_s(item.key, item.attempt)
                if sink is not None:
                    sink(
                        PointRetried(
                            key=item.key,
                            label=item.label,
                            rung=item.rung,
                            attempt=item.attempt,
                            error=item.error,
                            delay_s=delay,
                            reason="error",
                            worker=item.worker,
                        )
                    )
                reissue(point, delay)
            else:
                fail(point, item.error, item.attempt)

        def handle_pool_break(infos: List[_Inflight], exc: BaseException) -> None:
            error = f"{type(exc).__name__}: {exc}".strip(": ")
            suspects: List[Tuple[SweepPoint, int]] = []
            solo_victims: List[Tuple[SweepPoint, int]] = []
            for info in infos:
                if info.abandoned:
                    continue  # already re-issued (or failed) by the watchdog
                for p, attempt in zip(info.points, info.attempts):
                    if p.key() in resolved:
                        continue
                    (solo_victims if info.solo else suspects).append((p, attempt))
            if sink is not None:
                sink(
                    WorkerLost(
                        worker=_lost_worker_pid(pool),
                        inflight=len(suspects) + len(solo_victims),
                        error=error,
                    )
                )
            respawn(error)
            for p, attempt in solo_victims:
                # Solo run, solo crash: guilt is certain. Quarantine.
                fail(p, f"point repeatedly crashed the worker pool ({error})", attempt)
            for p, attempt in suspects:
                key = p.key()
                blames[key] = blames.get(key, 0) + 1
                if sink is not None:
                    sink(
                        PointRetried(
                            key=key,
                            label=p.display_label,
                            rung=p.rung,
                            attempt=attempt,
                            error=error,
                            delay_s=0.0,
                            reason="worker-lost",
                        )
                    )
                if blames[key] >= max(1, policy.max_attempts - 1):
                    probation.append(p)
                else:
                    reissue(p, 0.0)

        # -------------------------------------------------------------- #
        try:
            for chunk in self._chunk(points, jobs):
                submit(chunk)
            while len(resolved) < len(points):
                now = time.monotonic()
                if probation:
                    # Probation points run with an empty pool: wait for the
                    # in-flight work to drain before submitting one, alone.
                    if not inflight:
                        point = probation.popleft()
                        if point.key() not in resolved:
                            submit([point], solo=True)
                        continue
                else:
                    while retry_heap and retry_heap[0][0] <= now:
                        _, _, point = heapq.heappop(retry_heap)
                        if point.key() not in resolved:
                            submit([point])
                if not inflight:
                    if retry_heap:
                        time.sleep(
                            min(0.05, max(0.0, retry_heap[0][0] - time.monotonic()))
                        )
                        continue
                    if probation:
                        continue
                    raise RuntimeError(
                        "fault-tolerant pool lost track of "
                        f"{len(points) - len(resolved)} unresolved point(s)"
                    )
                waits = [
                    info.deadline - now
                    for info in inflight.values()
                    if not info.abandoned and info.deadline is not None
                ]
                if retry_heap and not probation:
                    waits.append(retry_heap[0][0] - now)
                timeout = max(0.0, min(waits)) if waits else None
                if probation and timeout is None:
                    # A probation point is waiting for the pool to drain;
                    # poll rather than block forever behind a wedged,
                    # already-abandoned straggler.
                    timeout = 0.05
                done, _ = wait(
                    list(inflight), timeout=timeout, return_when=FIRST_COMPLETED
                )
                broken: Optional[BaseException] = None
                broken_infos: List[_Inflight] = []
                for future in done:
                    info = inflight.pop(future)
                    try:
                        items = future.result()
                    except BrokenExecutor as exc:
                        broken = exc
                        broken_infos.append(info)
                        continue
                    for point, item in zip(info.points, items):
                        if item.key in resolved:
                            continue  # a late straggler lost the race
                        if isinstance(item, PointRecord):
                            deliver(item)
                        else:
                            handle_error(point, item)
                if broken is not None:
                    # One break kills every sibling future; drain them all.
                    broken_infos.extend(inflight.values())
                    inflight.clear()
                    handle_pool_break(broken_infos, broken)
                    continue
                # Deadline watchdog: abandon expired chunks, re-issue their
                # unresolved points immediately (or fail them at budget).
                now = time.monotonic()
                for info in inflight.values():
                    if (
                        info.abandoned
                        or info.deadline is None
                        or info.deadline > now
                    ):
                        continue
                    info.abandoned = True
                    for p, attempt in zip(info.points, info.attempts):
                        if p.key() in resolved:
                            continue
                        error = f"deadline {policy.deadline_s:g}s exceeded"
                        if attempt < policy.max_attempts:
                            if sink is not None:
                                sink(
                                    PointRetried(
                                        key=p.key(),
                                        label=p.display_label,
                                        rung=p.rung,
                                        attempt=attempt,
                                        error=error,
                                        delay_s=0.0,
                                        reason="deadline",
                                    )
                                )
                            reissue(p, 0.0)
                        else:
                            fail(p, f"point {error}", attempt)
                live_abandoned = sum(
                    1 for info in inflight.values() if info.abandoned
                )
                if live_abandoned >= jobs:
                    # Every worker is wedged on a straggler: replace the
                    # pool so the re-issued points have somewhere to run.
                    victims = [
                        (p, a)
                        for info in inflight.values()
                        if not info.abandoned
                        for p, a in zip(info.points, info.attempts)
                        if p.key() not in resolved
                    ]
                    inflight.clear()
                    respawn(f"{live_abandoned} worker(s) stuck past deadline")
                    for p, attempt in victims:
                        if sink is not None:
                            sink(
                                PointRetried(
                                    key=p.key(),
                                    label=p.display_label,
                                    rung=p.rung,
                                    attempt=attempt,
                                    error="pool replaced while in flight",
                                    delay_s=0.0,
                                    reason="worker-lost",
                                )
                            )
                        reissue(p, 0.0)
        finally:
            _terminate_pool(pool)
        return [resolved[p.key()] for p in points]


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*: kill workers, then release the executor.

    ``shutdown(wait=True)`` would block behind wedged or dead workers; the
    fault-tolerant path needs its capacity back immediately, so live worker
    processes are terminated first (best-effort, via the executor's private
    process table) and the shutdown never waits.
    """
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.terminate()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _lost_worker_pid(pool: ProcessPoolExecutor) -> Optional[int]:
    """Best-effort pid of a dead worker in a broken pool (None if unknown)."""
    processes = getattr(pool, "_processes", None) or {}
    for pid, proc in list(processes.items()):
        try:
            if not proc.is_alive():
                return pid
        except Exception:
            continue
    return None


def make_runner(
    jobs: int = 1,
    chunksize: Optional[int] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> Runner:
    """The standard runner for a given parallelism degree."""
    if jobs <= 1:
        return SerialRunner(retry_policy=retry_policy)
    return ProcessPoolRunner(jobs=jobs, chunksize=chunksize, retry_policy=retry_policy)
