"""Pluggable sweep executors: in-process serial and process-pool parallel.

Both runners share one contract: ``run(points)`` evaluates every
:class:`~repro.sweep.spec.SweepPoint` and returns one
:class:`~repro.sweep.record.PointRecord` per point, **in input order**, while
an optional ``on_result`` callback observes records as they complete (the
campaign layer appends them to the JSONL checkpoint there).

The :class:`ProcessPoolRunner` shards the point list into contiguous chunks
and ships whole chunks to workers.  Two things make this fast:

* evaluation happens entirely in the worker — including :func:`compile`,
  which dominates broad analytic sweeps — so the parent only unpickles slim
  records;
* pool workers live for the whole run and keep their module-global plan
  cache warm, and chunking keeps points that share a compiled design (e.g.
  the smache/baseline pair of one problem) on the same worker.

Each record's ``meta`` carries the worker pid and that worker's cumulative
plan-cache counters, so :class:`~repro.sweep.campaign.CampaignResult` can
report cache behaviour across the whole pool.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import replace
from math import ceil
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.pipeline.backends import get_backend
from repro.pipeline.cache import CacheInfo, plan_cache
from repro.pipeline.compile import compile as compile_problem
from repro.sweep.record import PointRecord
from repro.sweep.spec import SweepPoint

#: Callback observing each record as it completes (checkpoint append hook).
ResultCallback = Callable[[PointRecord], None]


def _cache_meta(baseline: Optional[CacheInfo] = None) -> Dict[str, int]:
    """Plan-cache counters relative to ``baseline`` (absolute when None)."""
    info = plan_cache.cache_info()
    hits, misses = info.hits, info.misses
    if baseline is not None:
        hits -= baseline.hits
        misses -= baseline.misses
    return {"cache_hits": hits, "cache_misses": misses, "cache_size": info.currsize}


def _evaluate_point(
    point: SweepPoint,
    keep_result: bool,
    cache_baseline: Optional[CacheInfo] = None,
    strip_artifacts: bool = False,
    run_index: int = 0,
) -> PointRecord:
    """Evaluate one point against this process's warm plan cache."""
    t0 = time.perf_counter()
    design = compile_problem(point.problem)
    t1 = time.perf_counter()
    result = get_backend(point.backend).evaluate(design, point.request)
    t2 = time.perf_counter()
    if keep_result and strip_artifacts:
        # Live simulation objects do not belong on the wire; metrics, the
        # design and the output grid survive the process boundary.
        result = replace(result, artifacts={})
    meta = {
        "wall_seconds": t2 - t0,
        # Backend time alone, excluding (possibly cold) compilation — what
        # e.g. the E5 speedup column compares between backends.
        "eval_seconds": t2 - t1,
        "worker": os.getpid(),
        "run": run_index,
    }
    meta.update(_cache_meta(cache_baseline))
    return PointRecord.from_result(
        point.key(),
        point.display_label,
        result,
        rung=point.rung,
        meta=meta,
        keep_result=keep_result,
    )


#: First-use snapshot of this process's plan-cache counters.  A forked worker
#: inherits the parent's counters (and possibly a warm cache); subtracting
#: the snapshot makes reported stats mean "work done by this worker".
_WORKER_BASELINE: Optional[CacheInfo] = None
_WORKER_PID: Optional[int] = None


def _worker_cache_baseline() -> CacheInfo:
    global _WORKER_BASELINE, _WORKER_PID
    pid = os.getpid()
    if _WORKER_PID != pid:
        _WORKER_PID = pid
        _WORKER_BASELINE = plan_cache.cache_info()
    return _WORKER_BASELINE


def _evaluate_chunk(args: Tuple[Sequence[SweepPoint], bool, int]) -> List[PointRecord]:
    """Worker entry point: evaluate one contiguous shard of the sweep."""
    points, keep_results, run_index = args
    baseline = _worker_cache_baseline()
    return [
        _evaluate_point(
            p,
            keep_result=keep_results,
            cache_baseline=baseline,
            strip_artifacts=True,
            run_index=run_index,
        )
        for p in points
    ]


class Runner:
    """Base class: execute sweep points, preserving input order.

    Each ``run()`` invocation gets a fresh index, recorded in every record's
    ``meta["run"]``: cache counters are cumulative *within* one invocation,
    so aggregation must distinguish invocations (a multi-rung strategy calls
    ``run()`` once per rung, possibly reusing worker pids).
    """

    #: Degree of parallelism the runner provides.
    jobs: int = 1

    def _next_run_index(self) -> int:
        # Lazy so Runner subclasses need not chain __init__.
        self._run_counter = getattr(self, "_run_counter", 0) + 1
        return self._run_counter

    def run(
        self,
        points: Sequence[SweepPoint],
        on_result: Optional[ResultCallback] = None,
        keep_results: bool = False,
    ) -> List[PointRecord]:
        """Evaluate every point (must be overridden)."""
        raise NotImplementedError


def _run_in_process(
    points: Sequence[SweepPoint],
    on_result: Optional[ResultCallback],
    keep_results: bool,
    strip_artifacts: bool,
    run_index: int,
) -> List[PointRecord]:
    """The shared in-process loop of SerialRunner and the pool's 1-job fallback."""
    baseline = plan_cache.cache_info()
    records = []
    for point in points:
        record = _evaluate_point(
            point,
            keep_result=keep_results,
            cache_baseline=baseline,
            strip_artifacts=strip_artifacts,
            run_index=run_index,
        )
        records.append(record)
        if on_result is not None:
            on_result(record)
    return records


class SerialRunner(Runner):
    """The in-process reference executor: one point after another."""

    jobs = 1

    def run(
        self,
        points: Sequence[SweepPoint],
        on_result: Optional[ResultCallback] = None,
        keep_results: bool = False,
    ) -> List[PointRecord]:
        return _run_in_process(
            points,
            on_result,
            keep_results,
            strip_artifacts=False,
            run_index=self._next_run_index(),
        )


class ProcessPoolRunner(Runner):
    """Chunked sharding over a :class:`concurrent.futures.ProcessPoolExecutor`.

    Parameters
    ----------
    jobs:
        Worker process count.
    chunksize:
        Points per shard; defaults to about four shards per worker so the
        pool stays busy while chunks remain large enough to amortise IPC and
        keep cache-sharing points together.
    start_method:
        Multiprocessing start method; defaults to ``fork`` where available
        (cheap on Linux), otherwise the platform default.
    """

    def __init__(
        self,
        jobs: int = 2,
        chunksize: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be positive")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be positive")
        self.jobs = jobs
        self.chunksize = chunksize
        if start_method is None and "fork" in multiprocessing.get_all_start_methods():
            start_method = "fork"
        self.start_method = start_method

    def _context(self):
        if self.start_method is None:
            return None
        return multiprocessing.get_context(self.start_method)

    def run(
        self,
        points: Sequence[SweepPoint],
        on_result: Optional[ResultCallback] = None,
        keep_results: bool = False,
    ) -> List[PointRecord]:
        points = list(points)
        if not points:
            return []
        run_index = self._next_run_index()
        jobs = min(self.jobs, len(points))
        if jobs == 1:
            # In-process fallback honouring the parallel contract: same run
            # tagging, and artifacts stripped exactly as the workers would.
            return _run_in_process(
                points, on_result, keep_results, strip_artifacts=True, run_index=run_index
            )
        chunksize = self.chunksize or max(1, ceil(len(points) / (jobs * 4)))
        chunks = [points[i : i + chunksize] for i in range(0, len(points), chunksize)]
        by_chunk: Dict[int, List[PointRecord]] = {}
        with ProcessPoolExecutor(max_workers=jobs, mp_context=self._context()) as pool:
            futures = {
                pool.submit(_evaluate_chunk, (chunk, keep_results, run_index)): index
                for index, chunk in enumerate(chunks)
            }
            for future in as_completed(futures):
                records = future.result()
                by_chunk[futures[future]] = records
                if on_result is not None:
                    for record in records:
                        on_result(record)
        return [record for index in range(len(chunks)) for record in by_chunk[index]]


def make_runner(jobs: int = 1, chunksize: Optional[int] = None) -> Runner:
    """The standard runner for a given parallelism degree."""
    if jobs <= 1:
        return SerialRunner()
    return ProcessPoolRunner(jobs=jobs, chunksize=chunksize)
