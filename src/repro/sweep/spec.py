"""Declarative sweep specifications.

A :class:`SweepSpec` describes a whole problem space once — grid sizes ×
stencils × buffer partitions × reach constraints × backends × systems — and
:meth:`SweepSpec.expand` turns it into concrete :class:`SweepPoint`\\ s, each
a fully self-contained, picklable unit of work (problem + backend + request).

Every point carries a *stable key*: a content hash over everything the
evaluation depends on.  The key is what makes campaigns resumable (a JSONL
checkpoint records completed keys, see :mod:`repro.sweep.checkpoint`) and
deterministic (serial and parallel runs sort records by the same keys).  The
spec itself has a :meth:`SweepSpec.fingerprint` so a checkpoint can refuse to
resume a different campaign under the same file name.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.partition import StreamBufferMode
from repro.core.stencil import StencilShape
from repro.memory.dram import DRAMTiming
from repro.pipeline.backends import EvaluationRequest
from repro.pipeline.problem import StencilProblem


def _digest(payload: str, length: int = 16) -> str:
    """A short, process-stable hex digest of a canonical string."""
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:length]


def fingerprint_points(name: str, points: Sequence["SweepPoint"]) -> str:
    """Digest of a campaign (name + every point key), for checkpoint headers.

    Callers that already hold the expanded point list use this directly
    instead of :meth:`SweepSpec.fingerprint` to avoid re-expanding the spec.
    """
    payload = "\n".join(p.key() for p in points)
    return _digest(f"{name}\n{payload}")


@dataclass(frozen=True)
class SweepPoint:
    """One unit of campaign work: evaluate one problem with one backend."""

    problem: StencilProblem
    backend: str = "analytic"
    request: EvaluationRequest = field(default_factory=EvaluationRequest)
    #: Successive-halving rung (0 for single-stage strategies).
    rung: int = 0
    #: Report label; defaults to the problem's name.
    label: Optional[str] = None

    @property
    def display_label(self) -> str:
        """The label shown in reports and records."""
        return self.label if self.label is not None else self.problem.name

    def key(self) -> str:
        """Stable content key identifying this evaluation across processes.

        Built from dataclass ``repr``\\ s, which are deterministic (unlike
        ``hash()``, which is salted per interpreter).  A request-supplied
        input grid contributes its raw bytes, not its (truncated) repr.
        """
        req = self.request
        grid_digest = ""
        if req.input_grid is not None:
            import numpy as np

            grid_digest = hashlib.sha1(
                np.ascontiguousarray(req.input_grid).tobytes()
            ).hexdigest()
        payload = "|".join(
            (
                self.problem.name,
                repr(self.problem.cache_key()),
                self.backend,
                req.system,
                str(req.iterations),
                repr(req.kernel),
                repr(req.dram_timing),
                str(req.write_through),
                req.input_kind,
                grid_digest,
                str(req.max_cycles),
                str(self.rung),
            )
        )
        return _digest(payload)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative problem space that expands to :class:`SweepPoint`\\ s.

    Axes default to "keep the base problem's value"; every supplied axis
    multiplies the space.  Alternatively pass an explicit ``problems`` list
    (the unification seam for :func:`repro.dse.explore_performance`-style
    sweeps), in which case the per-problem axes are ignored.
    """

    name: str = "campaign"
    base: Optional[StencilProblem] = None
    problems: Optional[Tuple[StencilProblem, ...]] = None
    grid_sizes: Optional[Tuple[Tuple[int, ...], ...]] = None
    stencils: Optional[Tuple[StencilShape, ...]] = None
    modes: Optional[Tuple[StreamBufferMode, ...]] = None
    max_stream_reaches: Optional[Tuple[Optional[int], ...]] = None
    backends: Tuple[str, ...] = ("analytic",)
    systems: Tuple[str, ...] = ("smache",)
    iterations: int = 1
    dram_timing: Optional[DRAMTiming] = None
    write_through: bool = True

    def __post_init__(self) -> None:
        if self.base is None and not self.problems:
            raise ValueError("SweepSpec needs a base problem or an explicit problem list")
        if self.iterations < 0:
            raise ValueError("iterations must be non-negative")
        for axis in ("problems", "grid_sizes", "stencils", "modes",
                     "max_stream_reaches", "backends", "systems"):
            value = getattr(self, axis)
            if value is not None:
                object.__setattr__(self, axis, tuple(value))
        if self.grid_sizes is not None:
            object.__setattr__(
                self, "grid_sizes", tuple(tuple(int(s) for s in g) for g in self.grid_sizes)
            )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_problems(
        cls,
        problems: Sequence[StencilProblem],
        name: str = "campaign",
        **kwargs,
    ) -> "SweepSpec":
        """Wrap an explicit problem list as a spec (names must be unique)."""
        return cls(name=name, problems=tuple(problems), **kwargs)

    # ------------------------------------------------------------------ #
    def _expand_problems(self) -> List[StencilProblem]:
        if self.problems is not None:
            return list(self.problems)
        out = []
        grids = self.grid_sizes or (self.base.grid.shape,)
        stencils = self.stencils or (self.base.stencil,)
        modes = self.modes or (self.base.mode,)
        reaches = self.max_stream_reaches or (self.base.max_stream_reach,)
        for shape, stencil, mode, reach in itertools.product(grids, stencils, modes, reaches):
            parts = [self.name, "x".join(str(s) for s in shape)]
            if len(stencils) > 1:
                parts.append(stencil.name)
            if len(modes) > 1:
                parts.append(mode.value)
            if len(reaches) > 1:
                parts.append(f"reach-{reach if reach is not None else 'inf'}")
            out.append(
                replace(
                    self.base,
                    grid=type(self.base.grid)(
                        shape=shape, word_bytes=self.base.grid.word_bytes
                    ),
                    stencil=stencil,
                    mode=mode,
                    max_stream_reach=reach,
                    name="-".join(parts),
                )
            )
        return out

    def expand(self) -> List[SweepPoint]:
        """The concrete points of the campaign, in deterministic order."""
        request_base = dict(
            iterations=self.iterations,
            dram_timing=self.dram_timing,
            write_through=self.write_through,
        )
        points = []
        for problem in self._expand_problems():
            for backend in self.backends:
                for system in self.systems:
                    points.append(
                        SweepPoint(
                            problem=problem,
                            backend=backend,
                            request=EvaluationRequest(system=system, **request_base),
                        )
                    )
        return points

    @property
    def size(self) -> int:
        """Number of points the spec expands to."""
        return len(self.expand())

    def fingerprint(self) -> str:
        """A stable digest of the whole spec, written to checkpoint headers."""
        return fingerprint_points(self.name, self.expand())

    def describe(self) -> str:
        """One-line summary used in reports and checkpoint headers."""
        points = self.expand()
        backends = ",".join(self.backends)
        return f"{self.name}: {len(points)} points, backends [{backends}]"


def smoke_spec(name: str = "smoke", iterations: int = 2) -> SweepSpec:
    """A small built-in campaign used by the CLI default and CI smoke runs."""
    return SweepSpec(
        name=name,
        base=StencilProblem.paper_example(11, 11),
        grid_sizes=((11, 11), (16, 16), (24, 24)),
        max_stream_reaches=(0, 4, None),
        modes=(StreamBufferMode.HYBRID, StreamBufferMode.REGISTER_ONLY),
        backends=("analytic",),
        iterations=iterations,
    )


def _parse_grid_list(text: str) -> Tuple[Tuple[int, ...], ...]:
    """Parse ``"11x11,16x16"`` into grid shapes (CLI helper)."""
    grids = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if chunk:
            grids.append(tuple(int(s) for s in chunk.lower().split("x")))
    if not grids:
        raise ValueError(f"no grid sizes in {text!r}")
    return tuple(grids)


def _parse_reach_list(text: str) -> Tuple[Optional[int], ...]:
    """Parse ``"0,4,none"`` into reach constraints (CLI helper)."""
    reaches: List[Optional[int]] = []
    for chunk in text.split(","):
        chunk = chunk.strip().lower()
        if not chunk:
            continue
        reaches.append(None if chunk in ("none", "inf") else int(chunk))
    if not reaches:
        raise ValueError(f"no reach values in {text!r}")
    return tuple(reaches)
