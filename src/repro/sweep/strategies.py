"""Adaptive search strategies over an expanded sweep space.

A strategy decides *which* points to evaluate and *in what stages*; the
campaign supplies ``run``, a checkpoint-aware executor that takes a list of
:class:`~repro.sweep.spec.SweepPoint`\\ s and returns their
:class:`~repro.sweep.record.PointRecord`\\ s (skipping anything a resumed
checkpoint already holds).  Because strategies derive every stage
deterministically from prior records, an interrupted adaptive campaign
resumes exactly: stage one is replayed from the checkpoint, the same
survivors are selected, and only missing stage-two points are evaluated.

Built-ins:

* :class:`GridSearch` — evaluate the whole space (the default);
* :class:`RandomSearch` — a seeded random subsample of the space;
* :class:`SuccessiveHalving` — price *everything* with the cheap analytic
  backend, rank, and re-run only the top ``1/eta`` survivors with the
  cycle-accurate simulator: the same fast-then-honest idiom as
  :func:`repro.dse.explore_performance`, expressed as a campaign.

Strategies hand whole generations to ``run`` in one call, which is what lets
the runners' analytic fast lane (:mod:`repro.sweep.runners`) price an entire
analytic stage — :class:`RandomSearch`'s sample, :class:`SuccessiveHalving`'s
rung-0 screen — in a handful of vectorized calls instead of one model
evaluation per point.
"""

from __future__ import annotations

import random
from dataclasses import replace
from math import ceil
from typing import Callable, List, Sequence, Tuple

from repro.sweep.record import PointRecord
from repro.sweep.spec import SweepPoint

#: The campaign-supplied executor handed to a strategy.
RunPoints = Callable[[Sequence[SweepPoint]], List[PointRecord]]


def ranking_metric(record: PointRecord) -> Tuple:
    """Default ranking: fewest cycles, then least memory, then the key.

    The trailing key makes ranking — and therefore survivor selection —
    deterministic when two points tie on every metric.
    """
    cycles = record.cycles if record.cycles is not None else float("inf")
    bits = record.total_bits if record.total_bits is not None else float("inf")
    return (cycles, bits, record.key)


class SearchStrategy:
    """Base class: drive the campaign's executor over the expanded space."""

    name = "grid"

    def execute(self, points: Sequence[SweepPoint], run: RunPoints) -> List[PointRecord]:
        """Evaluate and return records (must be overridden)."""
        raise NotImplementedError


class GridSearch(SearchStrategy):
    """Exhaustive evaluation of every expanded point."""

    name = "grid"

    def execute(self, points: Sequence[SweepPoint], run: RunPoints) -> List[PointRecord]:
        return run(points)


class RandomSearch(SearchStrategy):
    """A seeded random subsample of the space, in expansion order.

    The sample depends only on ``seed`` and the point list, so resumed runs
    draw the same subset and skip completed work.
    """

    name = "random"

    def __init__(self, samples: int, seed: int = 0) -> None:
        if samples < 1:
            raise ValueError("samples must be positive")
        self.samples = samples
        self.seed = seed

    def execute(self, points: Sequence[SweepPoint], run: RunPoints) -> List[PointRecord]:
        points = list(points)
        if self.samples >= len(points):
            return run(points)
        rng = random.Random(self.seed)
        indices = sorted(rng.sample(range(len(points)), self.samples))
        return run([points[i] for i in indices])


class SuccessiveHalving(SearchStrategy):
    """Analytic pricing of everything, cycle-accurate re-run of survivors.

    Rung 0 forces every point onto ``price_backend`` (cheap, closed-form);
    the best ``ceil(n / eta)`` points by ``metric`` then graduate to rung 1
    on ``verify_backend``.  Records of both rungs are returned — rung-1
    records carry the trusted numbers, rung-0 records document the pricing.
    With the default analytic pricing backend the whole rung-0 screen rides
    the runners' vectorized fast lane, so the screen's cost is a few NumPy
    folds rather than one closed-form evaluation per candidate.
    """

    name = "halving"

    def __init__(
        self,
        eta: int = 2,
        min_survivors: int = 1,
        price_backend: str = "analytic",
        verify_backend: str = "simulate",
        metric: Callable[[PointRecord], Tuple] = ranking_metric,
    ) -> None:
        if eta < 2:
            raise ValueError("eta must be at least 2")
        if min_survivors < 1:
            raise ValueError("min_survivors must be positive")
        self.eta = eta
        self.min_survivors = min_survivors
        self.price_backend = price_backend
        self.verify_backend = verify_backend
        self.metric = metric

    def execute(self, points: Sequence[SweepPoint], run: RunPoints) -> List[PointRecord]:
        # Forcing every point onto the pricing backend collapses a
        # multi-backend spec's expansions onto identical keys; dedup so each
        # candidate is priced once and cannot fill several survivor slots.
        priced_points, seen = [], set()
        for p in points:
            priced_point = replace(p, backend=self.price_backend, rung=0)
            key = priced_point.key()
            if key not in seen:
                seen.add(key)
                priced_points.append(priced_point)
        priced = run(priced_points)
        n_survivors = max(self.min_survivors, ceil(len(priced_points) / self.eta))
        if n_survivors >= len(priced_points):
            survivors_keys = [r.key for r in priced]
        else:
            survivors_keys = [r.key for r in sorted(priced, key=self.metric)[:n_survivors]]
        by_key = {p.key(): p for p in priced_points}
        survivors = [
            replace(by_key[key], backend=self.verify_backend, rung=1)
            for key in survivors_keys
        ]
        verified = run(survivors)
        return priced + verified


def get_strategy(name: str, **kwargs) -> SearchStrategy:
    """Build a strategy by CLI name (``grid``, ``random``, ``halving``)."""
    if name == "grid":
        return GridSearch()
    if name == "random":
        return RandomSearch(
            samples=int(kwargs.get("samples", 16)), seed=int(kwargs.get("seed", 0))
        )
    if name == "halving":
        return SuccessiveHalving(eta=int(kwargs.get("eta", 2)))
    raise KeyError(f"unknown strategy {name!r}; choose from ['grid', 'random', 'halving']")
