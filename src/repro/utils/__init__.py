"""Small shared utilities: unit conversions, validation helpers, table formatting."""

from repro.utils.units import bits_to_bytes, bytes_to_kib, kib, mib, Quantity
from repro.utils.validation import check_positive, check_non_negative, check_in_range
from repro.utils.tables import format_table
from repro.utils.pareto import pareto_front

__all__ = [
    "pareto_front",
    "bits_to_bytes",
    "bytes_to_kib",
    "kib",
    "mib",
    "Quantity",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "format_table",
]
