"""Generic Pareto-front selection under minimisation.

One implementation of the dominance test shared by every sweep in the repo:
the register/BRAM and cycles/memory fronts of :mod:`repro.dse.explorer` and
the campaign front of :mod:`repro.sweep.campaign`.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def pareto_front(items: Sequence[T], key: Callable[[T], Tuple]) -> List[T]:
    """The non-dominated subset of ``items`` under coordinate-wise minimisation.

    ``key`` maps an item to a tuple of objectives (smaller is better).  An
    item is dominated when some other item is at least as good on every
    objective and strictly better on at least one — so exact ties survive
    together, and the returned front preserves the input order.
    """
    keyed = [(item, tuple(key(item))) for item in items]
    front = []
    for item, objectives in keyed:
        dominated = any(
            other is not item
            and all(o <= s for o, s in zip(other_objectives, objectives))
            and other_objectives != objectives
            for other, other_objectives in keyed
        )
        if not dominated:
            front.append(item)
    return front
