"""Plain-text table formatting for the evaluation harness.

The experiment harness prints rows in the same layout as the paper's Figure 2
and Table I; this module holds the shared formatting code.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(row: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(headers))
    lines.append(render_row(["-" * w for w in widths]))
    for row in cells:
        lines.append(render_row(row))
    return "\n".join(lines)


def format_key_values(pairs: Mapping[str, object], indent: int = 2) -> str:
    """Render a mapping as aligned ``key : value`` lines."""
    if not pairs:
        return ""
    width = max(len(str(k)) for k in pairs)
    pad = " " * indent
    return "\n".join(f"{pad}{str(k).ljust(width)} : {_format_cell(v)}" for k, v in pairs.items())
