"""Unit helpers used throughout the package.

The paper reports DRAM traffic in "KB" which, from the arithmetic in the
evaluation section (242000 bytes reported as 236.3 KB), is binary KiB.  All
conversions in this module are explicit about the base to avoid ambiguity.
"""

from __future__ import annotations

from dataclasses import dataclass


def bits_to_bytes(bits: int) -> float:
    """Convert a bit count to bytes (may be fractional for non-multiples of 8)."""
    return bits / 8.0


def bytes_to_kib(nbytes: float) -> float:
    """Convert bytes to binary kibibytes (the paper's "KB")."""
    return nbytes / 1024.0


def kib(n: float) -> int:
    """Return ``n`` KiB expressed in bytes."""
    return int(n * 1024)


def mib(n: float) -> int:
    """Return ``n`` MiB expressed in bytes."""
    return int(n * 1024 * 1024)


def mhz(hz: float) -> float:
    """Convert a frequency in Hz to MHz."""
    return hz / 1e6


def microseconds(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds * 1e6


@dataclass(frozen=True)
class Quantity:
    """A value with a unit label, used in report formatting.

    This is intentionally lightweight; it exists so that evaluation tables can
    carry their units alongside the numbers without resorting to string
    concatenation at every call site.
    """

    value: float
    unit: str

    def __format__(self, spec: str) -> str:
        if not spec:
            spec = ".4g"
        return f"{format(self.value, spec)} {self.unit}"

    def __str__(self) -> str:
        return format(self)
