"""Argument validation helpers.

These raise ``ValueError`` with a consistent message format so that tests can
assert on invalid-configuration behaviour across the package.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_in_range(name: str, value: float, low: float, high: float) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")


def check_shape(name: str, shape: Sequence[int], min_dims: int = 1, max_dims: int = 4) -> None:
    """Validate a grid shape: a non-empty sequence of positive integers."""
    if len(shape) < min_dims or len(shape) > max_dims:
        raise ValueError(
            f"{name} must have between {min_dims} and {max_dims} dimensions, got {len(shape)}"
        )
    for i, extent in enumerate(shape):
        if int(extent) != extent or extent <= 0:
            raise ValueError(f"{name}[{i}] must be a positive integer, got {extent!r}")


def check_unique(name: str, items: Iterable) -> None:
    """Raise ``ValueError`` if ``items`` contains duplicates."""
    seen = set()
    for item in items:
        if item in seen:
            raise ValueError(f"{name} contains duplicate entry {item!r}")
        seen.add(item)
