"""Workbench facade tests: fluent lowering, byte-identical campaigns,
session cache ownership and the deprecation shims."""

import io

import pytest

from repro.api import ProblemBuilder, SweepBuilder, Workbench
from repro.core.partition import StreamBufferMode
from repro.core.stencil import StencilShape
from repro.pipeline import StencilProblem, evaluate, evaluate_batch
from repro.pipeline.cache import PlanCache
from repro.sweep import (
    EventLog,
    ProgressReporter,
    SuccessiveHalving,
    SweepSpec,
    execute_campaign,
    run_campaign,
    smoke_spec,
)


class TestFluentLowering:
    def test_problem_builder_lowers_to_a_stencil_problem(self):
        wb = Workbench()
        problem = (
            wb.problem(rows=11, cols=11)
            .with_stencil(StencilShape.asymmetric_2d())
            .with_mode(StreamBufferMode.REGISTER_ONLY)
            .with_reach(4)
            .named("fluent")
            .build()
        )
        assert isinstance(problem, StencilProblem)
        assert problem.stencil == StencilShape.asymmetric_2d()
        assert problem.mode is StreamBufferMode.REGISTER_ONLY
        assert problem.max_stream_reach == 4
        assert problem.name == "fluent"

    def test_builder_steps_do_not_mutate_the_parent(self):
        wb = Workbench()
        base = wb.problem(rows=11, cols=11)
        forked = base.with_reach(2)
        assert base.build().max_stream_reach is None
        assert forked.build().max_stream_reach == 2

    def test_with_grid_resizes(self):
        wb = Workbench()
        problem = wb.problem(rows=11, cols=11).with_grid((24, 32)).build()
        assert problem.grid.shape == (24, 32)

    def test_sweep_builder_lowers_to_the_equivalent_spec(self):
        wb = Workbench()
        base = StencilProblem.paper_example(11, 11)
        built = (
            wb.problem(base)
            .sweep(
                "study",
                grid_sizes=[(11, 11), (16, 16), (24, 24)],
                max_stream_reaches=[0, 4, None],
                modes=[StreamBufferMode.HYBRID, StreamBufferMode.REGISTER_ONLY],
                iterations=2,
            )
            .spec()
        )
        manual = SweepSpec(
            name="study",
            base=base,
            grid_sizes=((11, 11), (16, 16), (24, 24)),
            max_stream_reaches=(0, 4, None),
            modes=(StreamBufferMode.HYBRID, StreamBufferMode.REGISTER_ONLY),
            backends=("analytic",),
            iterations=2,
        )
        assert built.fingerprint() == manual.fingerprint()
        assert [p.key() for p in built.expand()] == [p.key() for p in manual.expand()]

    def test_sweep_builder_defaults_backend_to_the_session(self):
        wb = Workbench(backend="cost")
        spec = wb.problem(rows=7, cols=9).sweep().spec()
        assert spec.backends == ("cost",)

    def test_problem_accepts_config_and_overrides(self):
        from repro.core.config import SmacheConfig

        wb = Workbench()
        builder = wb.problem(SmacheConfig.paper_example(9, 9), max_stream_reach=3)
        assert isinstance(builder, ProblemBuilder)
        assert builder.build().max_stream_reach == 3

    def test_strategy_accepts_names_and_instances(self):
        wb = Workbench()
        builder = wb.problem(rows=7, cols=9).sweep()
        assert isinstance(builder.strategy("halving", eta=3), SweepBuilder)
        assert builder.strategy(SuccessiveHalving(eta=2)) is builder


class TestCampaignAcceptance:
    """The PR's acceptance criterion: Workbench output is byte-identical to
    the legacy run_campaign path, serial and jobs=4, progress attached."""

    def test_workbench_matches_legacy_serial_and_parallel(self):
        spec = smoke_spec(iterations=2)
        legacy_serial = execute_campaign(spec, jobs=1)
        legacy_parallel = execute_campaign(spec, jobs=4)

        wb = Workbench()
        stream = io.StringIO()
        fluent = (
            wb.problem(rows=11, cols=11)
            .sweep(
                "smoke",
                grid_sizes=[(11, 11), (16, 16), (24, 24)],
                max_stream_reaches=[0, 4, None],
                modes=[StreamBufferMode.HYBRID, StreamBufferMode.REGISTER_ONLY],
                iterations=2,
            )
            .with_progress(stream=stream, min_interval=0.0)
            .run()
        )
        parallel = Workbench(jobs=4).run(spec, progress=True)

        assert fluent.to_json() == legacy_serial.to_json()
        assert parallel.to_json() == legacy_serial.to_json()
        assert legacy_parallel.to_json() == legacy_serial.to_json()
        assert "points/s" in stream.getvalue() and "ETA" in stream.getvalue()

    def test_run_accepts_a_sweep_builder_directly(self):
        wb = Workbench()
        builder = wb.problem(rows=7, cols=9).sweep(iterations=1)
        result = wb.run(builder)
        assert result.size == 1

    def test_builder_checkpoint_and_jobs_flow_through(self, tmp_path):
        wb = Workbench()
        path = str(tmp_path / "wb.jsonl")
        builder = (
            wb.problem(rows=11, cols=11)
            .sweep("ck", grid_sizes=[(11, 11), (13, 13)], iterations=1)
            .jobs(2)
            .checkpoint(path)
        )
        first = builder.run()
        assert first.evaluated == 2 and first.checkpoint_path == path
        second = (
            wb.problem(rows=11, cols=11)
            .sweep("ck", grid_sizes=[(11, 11), (13, 13)], iterations=1)
            .checkpoint(path)
            .run()
        )
        assert second.evaluated == 0 and second.resumed == 2

    def test_session_observers_see_every_campaign(self):
        log = EventLog()
        wb = Workbench(observers=[log])
        wb.run(smoke_spec(iterations=1))
        wb.problem(rows=7, cols=9).sweep(iterations=1).run()
        assert log.count("campaign_started") == 2
        assert log.count("campaign_finished") == 2


class TestSessionOwnership:
    def test_private_cache_collects_the_sessions_compilations(self):
        cache = PlanCache()
        wb = Workbench(cache=cache)
        problem = StencilProblem.paper_example(9, 9)
        wb.compile(problem)
        wb.compile(problem)
        info = wb.cache_info()
        assert info.misses == 1 and info.hits == 1

    def test_evaluate_uses_the_session_backend(self):
        wb = Workbench(backend="cost")
        result = wb.evaluate(StencilProblem.paper_example(9, 9))
        assert result.backend == "cost"
        assert wb.evaluate(StencilProblem.paper_example(9, 9), backend="analytic").cycles

    def test_evaluate_batch_uses_session_policy(self):
        wb = Workbench(jobs=2)
        problems = [StencilProblem.paper_example(7, 9), StencilProblem.paper_example(9, 7)]
        results = wb.evaluate_batch(problems, iterations=2)
        assert [r.design.problem.name for r in results] == [p.name for p in problems]
        serial = [evaluate(p, backend="analytic", iterations=2) for p in problems]
        assert [r.cycles for r in results] == [r.cycles for r in serial]

    def test_explore_goes_through_the_session(self):
        from repro.dse import explore_performance

        problems = [
            StencilProblem.paper_example(11, 11, max_stream_reach=reach, name=f"r{reach}")
            for reach in (0, 4)
        ]
        wb = Workbench()
        sweep = wb.explore(problems, iterations=2)
        reference = explore_performance(problems, iterations=2)
        assert sweep.selected.label == reference.selected.label
        assert [p.predicted_cycles for p in sweep.points] == [
            p.predicted_cycles for p in reference.points
        ]

    def test_backends_lists_the_registry(self):
        assert "analytic" in Workbench().backends()
        assert "simulate" in Workbench().backends()

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            Workbench(jobs=0)


class TestDeprecatedShims:
    def test_run_campaign_warns_but_works(self):
        spec = smoke_spec(iterations=1)
        with pytest.warns(DeprecationWarning, match="Workbench"):
            legacy = run_campaign(spec)
        assert legacy.to_json() == execute_campaign(spec).to_json()

    def test_evaluate_batch_warns_but_works(self):
        problems = [StencilProblem.paper_example(7, 9)]
        with pytest.warns(DeprecationWarning, match="Workbench"):
            results = evaluate_batch(problems, iterations=1)
        assert results[0].cycles is not None


class TestBuilderConfigCarriesThroughRun:
    """wb.run(builder) must honour everything the builder accumulated."""

    def test_builder_checkpoint_strategy_and_observers_survive(self, tmp_path):
        wb = Workbench()
        path = str(tmp_path / "carried.jsonl")
        log = EventLog()
        builder = (
            wb.problem(rows=11, cols=11)
            .sweep("carried", grid_sizes=[(11, 11), (13, 13)], iterations=1)
            .strategy("halving", eta=2)
            .checkpoint(path)
            .observe(log)
        )
        result = wb.run(builder)
        assert result.strategy == "halving"
        assert result.checkpoint_path == path
        assert log.count("campaign_finished") == 1

    def test_explicit_run_arguments_override_the_builder(self, tmp_path):
        wb = Workbench()
        builder = (
            wb.problem(rows=11, cols=11)
            .sweep("override", grid_sizes=[(11, 11)], iterations=1)
            .strategy("halving", eta=2)
        )
        from repro.sweep import GridSearch

        result = wb.run(builder, strategy=GridSearch())
        assert result.strategy == "grid"


class TestExploreJobsInheritance:
    def test_explore_inherits_the_sessions_jobs(self):
        from repro.dse import explore_performance

        calls = []

        class Recording(Workbench):
            def evaluate_batch(self, problems, **kwargs):
                calls.append(kwargs.get("jobs"))
                return super().evaluate_batch(problems, **kwargs)

        wb = Recording(jobs=3)
        problems = [
            StencilProblem.paper_example(11, 11, max_stream_reach=r, name=f"j{r}")
            for r in (0, 4)
        ]
        explore_performance(problems, iterations=1, workbench=wb)
        # The pricing pass inherits the session's jobs; the Pareto re-sim
        # caps at the front size but never exceeds the session.
        assert calls[0] == 3
        assert all(1 <= j <= 3 for j in calls)

    def test_explicit_jobs_still_overrides_the_session(self):
        calls = []

        class Recording(Workbench):
            def evaluate_batch(self, problems, **kwargs):
                calls.append(kwargs.get("jobs"))
                return super().evaluate_batch(problems, **kwargs)

        from repro.dse import explore_performance

        wb = Recording(jobs=3)
        explore_performance(
            [StencilProblem.paper_example(11, 11)], iterations=1, jobs=1, workbench=wb
        )
        assert calls[0] == 1
