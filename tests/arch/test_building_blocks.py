"""Tests for the Smache building blocks: window buffer, static buffers, kernel HW."""

import numpy as np
import pytest

from repro.arch.access_table import AccessTable
from repro.arch.kernel import KernelHW, TupleData
from repro.arch.static_buffer import StaticBufferError, StaticBufferHW
from repro.arch.stream_buffer import WindowBuffer, WindowReadError
from repro.core.boundary import BoundarySpec
from repro.core.buffers import StaticBufferSpec, StreamBufferSpec
from repro.core.grid import GridSpec
from repro.core.stencil import StencilShape
from repro.reference.kernels import AveragingKernel
from repro.sim.engine import Simulator


@pytest.fixture
def window_spec():
    return StreamBufferSpec(reach=22, window_lo=-11, window_hi=11, word_bits=32)


class TestWindowBuffer:
    def test_push_and_read_back(self, window_spec):
        w = WindowBuffer(window_spec, tap_offsets=[-11, -1, 1, 11])
        for i in range(20):
            w.push(i, float(i * 10), cycle=i)
        assert w.head == 19
        assert w.read(19, cycle=20) == 190.0
        assert w.read(19 - 22, cycle=20) == 0.0 if w.covers(-3) else True

    def test_out_of_order_push_rejected(self, window_spec):
        w = WindowBuffer(window_spec)
        w.push(0, 1.0, cycle=0)
        with pytest.raises(WindowReadError):
            w.push(2, 2.0, cycle=1)

    def test_read_outside_coverage_rejected(self, window_spec):
        w = WindowBuffer(window_spec)
        for i in range(30):
            w.push(i, float(i), cycle=i)
        # element 0 has been evicted (depth 25)
        assert not w.covers(0)
        with pytest.raises(WindowReadError):
            w.read(0, cycle=31)

    def test_coverage_is_depth_elements(self, window_spec):
        w = WindowBuffer(window_spec)
        for i in range(40):
            w.push(i, float(i), cycle=i)
        assert w.covers(40 - 25)
        assert not w.covers(40 - 26)
        assert w.fill_count() == 25

    def test_centre_tracks_lookahead(self, window_spec):
        w = WindowBuffer(window_spec)
        for i in range(15):
            w.push(i, float(i), cycle=i)
        assert w.centre == 14 - 11

    def test_tap_positions_become_registers(self, window_spec):
        w = WindowBuffer(window_spec, tap_offsets=[-11, -1, 1, 11])
        # positions window_hi - o for each tap
        for o in (-11, -1, 1, 11):
            assert 11 - o in w.register_positions

    def test_aligned_tap_reads_hit_registers_only(self, window_spec):
        w = WindowBuffer(window_spec, tap_offsets=[-11, -1, 1, 11])
        for i in range(60):
            w.push(i, float(i), cycle=i)
            centre = w.centre
            if centre >= 12:  # interior: all taps resolvable
                for o in (-11, -1, 1, 11):
                    w.read(centre + o, cycle=i)
        assert w.max_bram_reads_per_cycle == 0
        assert w.port_report()["register_reads"] > 0

    def test_reset(self, window_spec):
        w = WindowBuffer(window_spec)
        w.push(0, 1.0, cycle=0)
        w.reset()
        assert w.head == -1
        assert w.fill_count() == 0


class TestStaticBufferHW:
    @pytest.fixture
    def spec(self):
        return StaticBufferSpec(name="row10", start=110, length=11, word_bits=32)

    def test_prefetch_then_read(self, spec):
        buf = StaticBufferHW(spec)
        for i in range(11):
            buf.prefetch_word(float(i))
        assert buf.prefetch_complete
        assert buf.read(110) == 0.0
        assert buf.read(120) == 10.0

    def test_prefetch_overflow_rejected(self, spec):
        buf = StaticBufferHW(spec)
        for i in range(11):
            buf.prefetch_word(0.0)
        with pytest.raises(StaticBufferError):
            buf.prefetch_word(0.0)

    def test_read_outside_coverage_rejected(self, spec):
        buf = StaticBufferHW(spec)
        with pytest.raises(StaticBufferError):
            buf.read(5)

    def test_write_through_goes_to_write_bank_until_swap(self, spec):
        buf = StaticBufferHW(spec)
        buf.load_read_bank(np.arange(11))
        assert buf.capture(115, 99.0)
        # read bank unchanged until the swap
        assert buf.read(115) == 5.0
        buf.swap()
        assert buf.read(115) == 99.0

    def test_capture_outside_coverage_is_ignored(self, spec):
        buf = StaticBufferHW(spec)
        assert not buf.capture(3, 1.0)
        assert buf.writes == 0

    def test_single_buffered_capture_is_visible_immediately_after_swap(self):
        spec = StaticBufferSpec(
            name="b", start=0, length=4, word_bits=32, double_buffered=False
        )
        buf = StaticBufferHW(spec)
        buf.load_read_bank([1, 2, 3, 4])
        buf.capture(2, 9.0)
        buf.swap()  # no bank change for single-buffered
        assert buf.read(2) == 9.0

    def test_load_read_bank_validates_length(self, spec):
        buf = StaticBufferHW(spec)
        with pytest.raises(StaticBufferError):
            buf.load_read_bank([1.0, 2.0])

    def test_reset(self, spec):
        buf = StaticBufferHW(spec)
        buf.load_read_bank(np.arange(11))
        buf.capture(115, 1.0)
        buf.swap()
        buf.reset()
        assert buf.read(110) == 0.0
        assert buf.swaps == 0
        assert not buf.prefetch_complete

    def test_begin_prefetch_allows_reload(self, spec):
        buf = StaticBufferHW(spec)
        buf.load_read_bank(np.arange(11))
        buf.begin_prefetch()
        assert not buf.prefetch_complete
        for i in range(11):
            buf.prefetch_word(float(i + 100))
        assert buf.read(110) == 100.0


class TestKernelHW:
    def test_processes_tuples_with_latency(self):
        sim = Simulator()
        kernel = KernelHW(sim, AveragingKernel())
        kernel.tuple_in.push(TupleData(index=0, offsets=((0, 1), (1, 0)), values=(2.0, 4.0)))
        sim.run_until(lambda: kernel.result_out.can_pop(), max_cycles=20)
        result = kernel.result_out.pop()
        assert result.index == 0
        assert result.value == 3.0
        assert sim.cycle >= AveragingKernel().latency

    def test_sustains_one_tuple_per_cycle(self):
        sim = Simulator()
        kernel = KernelHW(sim, AveragingKernel())
        results = []
        pushed = 0
        while len(results) < 40:
            if pushed < 40 and kernel.tuple_in.can_push():
                kernel.tuple_in.push(TupleData(index=pushed, offsets=((0, 1),), values=(1.0,)))
                pushed += 1
            if kernel.result_out.can_pop():
                results.append(kernel.result_out.pop())
            sim.step()
            assert sim.cycle < 200
        assert [r.index for r in results] == list(range(40))
        assert sim.cycle <= 40 + 10

    def test_counts_operations(self):
        sim = Simulator()
        kernel = KernelHW(sim, AveragingKernel())
        for i in range(3):
            kernel.tuple_in.push(TupleData(index=i, offsets=((0, 1),), values=(1.0,)))
            sim.step(2)
        sim.step(10)
        assert kernel.tuples_processed == 3
        assert kernel.operations == 12


class TestAccessTable:
    def test_table_covers_every_position(self, paper_config):
        table = AccessTable(paper_config.grid, paper_config.stencil, paper_config.boundary)
        assert len(table) == 121
        assert table.max_operands() == 4

    def test_total_reads_matches_histogram(self, paper_config):
        table = AccessTable(paper_config.grid, paper_config.stencil, paper_config.boundary)
        # interior 81*4 + edges 4*9*4(top/bottom have 4, left/right have 3)...
        # cross-check against direct resolution
        from repro.core.access import stream_tuples

        expected = sum(
            t.n_existing
            for t in stream_tuples(paper_config.grid, paper_config.stencil, paper_config.boundary)
        )
        assert table.total_element_reads() == expected

    def test_corner_entry(self, paper_config):
        table = AccessTable(paper_config.grid, paper_config.stencil, paper_config.boundary)
        corner = table[0]
        assert corner.n_reads == 3  # west neighbour skipped
        targets = sorted(a.target for a in corner.accesses if a.exists)
        assert targets == [1, 11, 110]
