"""1D and 3D stencil problems through the full cycle-accurate system.

The paper validates on a 2D grid, but nothing in the Smache model is
2D-specific; these tests exercise the whole stack (planner, buffers,
simulation) on 1D and 3D problems and validate against the NumPy reference.
"""

import numpy as np
import pytest

from repro.arch.system import run_smache
from repro.core.boundary import BoundaryKind, BoundarySpec
from repro.core.config import SmacheConfig
from repro.core.grid import GridSpec
from repro.core.stencil import StencilShape
from repro.reference.kernels import AveragingKernel, WeightedKernel
from repro.reference.stencil_exec import make_test_grid, reference_run


class Test1D:
    def test_periodic_ring_average(self):
        config = SmacheConfig(
            grid=GridSpec(shape=(64,)),
            stencil=StencilShape.from_offsets([(-1,), (1,)], name="ring"),
            boundary=BoundarySpec.all_circular(1),
            name="ring-64",
        )
        # wrap offsets are +-63: the planner should keep +-1 in the window and
        # put the two wrap elements in static buffers
        plan = config.plan()
        assert plan.stream.reach == 2
        assert plan.n_static_buffers == 2
        assert plan.static_elements == 2

        kernel = AveragingKernel(expected_points=2)
        grid_in = make_test_grid(config.grid, kind="random")
        ref = reference_run(grid_in, config.grid, config.stencil, config.boundary, kernel, 4)
        sim = run_smache(config, grid_in, iterations=4, kernel=kernel)
        np.testing.assert_allclose(sim.output, ref, rtol=1e-12)

    def test_long_reach_1d_filter(self):
        stencil = StencilShape.from_offsets([(-8,), (-1,), (0,), (1,), (8,)], name="long")
        config = SmacheConfig(
            grid=GridSpec(shape=(48,)),
            stencil=stencil,
            boundary=BoundarySpec.per_dimension([BoundaryKind.CLAMP]),
        )
        kernel = AveragingKernel(expected_points=5)
        grid_in = make_test_grid(config.grid, kind="ramp")
        ref = reference_run(grid_in, config.grid, config.stencil, config.boundary, kernel, 2)
        sim = run_smache(config, grid_in, iterations=2, kernel=kernel)
        np.testing.assert_allclose(sim.output, ref, rtol=1e-12)


class Test3D:
    def test_3d_periodic_slab(self):
        """A small 3D grid, periodic in the outermost dimension only."""
        config = SmacheConfig(
            grid=GridSpec(shape=(4, 6, 5)),
            stencil=StencilShape.von_neumann(3, radius=1),
            boundary=BoundarySpec.per_dimension(
                [BoundaryKind.CIRCULAR, BoundaryKind.OPEN, BoundaryKind.OPEN]
            ),
            name="slab",
        )
        analysis = config.analysis()
        # the wrap across the outermost dimension needs static storage
        assert analysis.n_static_buffers >= 1

        kernel = AveragingKernel(expected_points=7)
        grid_in = make_test_grid(config.grid, kind="random")
        ref = reference_run(grid_in, config.grid, config.stencil, config.boundary, kernel, 2)
        sim = run_smache(config, grid_in, iterations=2, kernel=kernel)
        np.testing.assert_allclose(sim.output, ref, rtol=1e-12)

    def test_3d_weighted_diffusion_open_box(self):
        weights = {
            (0, 0, 0): 0.4,
            (-1, 0, 0): 0.1, (1, 0, 0): 0.1,
            (0, -1, 0): 0.1, (0, 1, 0): 0.1,
            (0, 0, -1): 0.1, (0, 0, 1): 0.1,
        }
        config = SmacheConfig(
            grid=GridSpec(shape=(5, 5, 5)),
            stencil=StencilShape.from_offsets(list(weights), name="7-point"),
            boundary=BoundarySpec.all_open(3),
        )
        kernel = WeightedKernel(name="diff3d", weights=weights)
        grid_in = make_test_grid(config.grid, kind="impulse")
        ref = reference_run(grid_in, config.grid, config.stencil, config.boundary, kernel, 3)
        sim = run_smache(config, grid_in, iterations=3, kernel=kernel)
        np.testing.assert_allclose(sim.output, ref, rtol=1e-12)

    def test_3d_cost_model_scales_with_plane_size(self):
        small = SmacheConfig(
            grid=GridSpec(shape=(8, 8, 8)),
            stencil=StencilShape.von_neumann(3, radius=1),
            boundary=BoundarySpec.per_dimension(
                [BoundaryKind.CIRCULAR, BoundaryKind.OPEN, BoundaryKind.OPEN]
            ),
        )
        large = SmacheConfig(
            grid=GridSpec(shape=(8, 16, 16)),
            stencil=StencilShape.von_neumann(3, radius=1),
            boundary=BoundarySpec.per_dimension(
                [BoundaryKind.CIRCULAR, BoundaryKind.OPEN, BoundaryKind.OPEN]
            ),
        )
        # the window must span one full plane (+- plane size), so the stream
        # buffer grows with the plane while the hybrid register section stays put
        assert small.plan().stream.reach == 2 * 8 * 8
        assert large.plan().stream.reach == 2 * 16 * 16
        assert large.cost_estimate().r_stream_bits == small.cost_estimate().r_stream_bits

    def test_tiny_periodic_3d_grid_degenerates_to_all_static(self):
        """When the whole grid is cheaper to hold than the window, the planner
        collapses to a single static buffer covering it (reach-0 window)."""
        config = SmacheConfig(
            grid=GridSpec(shape=(4, 8, 8)),
            stencil=StencilShape.von_neumann(3, radius=1),
            boundary=BoundarySpec.per_dimension(
                [BoundaryKind.CIRCULAR, BoundaryKind.OPEN, BoundaryKind.OPEN]
            ),
        )
        plan = config.plan()
        assert plan.stream.reach == 0
        assert plan.n_static_buffers == 1
        assert plan.static_elements <= config.grid.size
