"""Fast-engine parity: the bit-identity contract across the whole system zoo.

The idle-horizon scheduler must be *unobservable*: for any configuration,
a fast-engine run and a naive-engine run of the same system produce the same
cycle count, the same DRAM traffic, the same operation counts, the same
output grid, the same stall statistics and FSM occupancies — and a campaign
over the simulate backend produces byte-identical canonical JSON.  These
tests sweep grid sizes, stream reaches, partitions, boundary kinds, DRAM
timings and both systems.
"""

import numpy as np
import pytest

from repro.arch.system import BaselineSystem, SmacheSystem
from repro.core.boundary import BoundaryKind, BoundarySpec
from repro.core.config import SmacheConfig
from repro.core.grid import GridSpec
from repro.core.stencil import StencilShape
from repro.memory.dram import DRAMTiming
from repro.reference.stencil_exec import make_test_grid
from repro.sim.engine import set_default_engine

#: A latency-heavy timing where the fast engine actually skips most cycles.
LATENCY_TIMING = DRAMTiming(random_access_cycles=8, read_latency=120)


def run_system(system_cls, config, engine, iterations=3, timing=None, **kwargs):
    system = system_cls(
        config, iterations=iterations, dram_timing=timing, engine=engine, **kwargs
    )
    system.load_input(make_test_grid(config.grid))
    result = system.run()
    return system, result


def assert_identical(system_cls, config, iterations=3, timing=None, **kwargs):
    """Run naive vs fast and compare every observable, exactly."""
    sys_n, res_n = run_system(system_cls, config, "naive", iterations, timing, **kwargs)
    sys_f, res_f = run_system(system_cls, config, "fast", iterations, timing, **kwargs)

    assert res_f.cycles == res_n.cycles
    assert res_f.instance_cycles == res_n.instance_cycles
    assert res_f.dram_words_read == res_n.dram_words_read
    assert res_f.dram_words_written == res_n.dram_words_written
    assert res_f.dram_bytes == res_n.dram_bytes
    assert res_f.operations == res_n.operations
    assert res_f.extra == res_n.extra
    assert np.array_equal(res_f.output, res_n.output)
    # stall statistics, per channel, to the cycle
    assert sys_f.sim.channel_stats() == sys_n.sim.channel_stats()
    # interval-union busy accounting must agree with per-tick naive counting
    assert sys_f.dram.busy_cycles == sys_n.dram.busy_cycles
    # FSM occupancies (per-cycle accounting batched by skip())
    if isinstance(sys_n, SmacheSystem):
        for fsm_n, fsm_f in zip(
            (sys_n.front_end.fsm_prefetch, sys_n.front_end.fsm_gather, sys_n.sequencer.fsm),
            (sys_f.front_end.fsm_prefetch, sys_f.front_end.fsm_gather, sys_f.sequencer.fsm),
        ):
            assert fsm_f.occupancy() == fsm_n.occupancy()
            assert fsm_f.history == fsm_n.history
    # the fast run must declare what it skipped
    total = res_f.engine_stats["ticks_executed"] + res_f.engine_stats["cycles_skipped"]
    assert total == res_f.cycles
    assert res_n.engine_stats["cycles_skipped"] == 0
    return res_f


class TestSmacheParity:
    @pytest.mark.parametrize("shape", [(5, 5), (8, 6), (11, 11), (7, 13)])
    def test_grid_sizes(self, shape):
        assert_identical(SmacheSystem, SmacheConfig.paper_example(*shape))

    @pytest.mark.parametrize("reach", [0, 2, 6, None])
    def test_stream_reaches(self, reach):
        config = SmacheConfig.paper_example(9, 9, max_stream_reach=reach)
        assert_identical(SmacheSystem, config)

    @pytest.mark.parametrize(
        "kinds",
        [
            [BoundaryKind.OPEN, BoundaryKind.OPEN],
            [BoundaryKind.CIRCULAR, BoundaryKind.CIRCULAR],
            [BoundaryKind.MIRROR, BoundaryKind.CLAMP],
            [BoundaryKind.CONSTANT, BoundaryKind.OPEN],
        ],
    )
    def test_boundary_kinds(self, kinds):
        base = SmacheConfig.paper_example(8, 8)
        config = SmacheConfig(
            grid=base.grid,
            stencil=base.stencil,
            boundary=BoundarySpec.per_dimension(kinds, constant_value=1.5),
        )
        assert_identical(SmacheSystem, config)

    @pytest.mark.parametrize("timing", [None, LATENCY_TIMING,
                                        DRAMTiming(stream_word_cycles=3, read_latency=12)])
    def test_dram_timings(self, timing):
        result = assert_identical(
            SmacheSystem, SmacheConfig.paper_example(9, 11), timing=timing
        )
        if timing is LATENCY_TIMING:
            # the latency-bound run must genuinely exercise the skip path
            assert result.engine_stats["skip_ratio"] > 0.5

    def test_write_through_disabled(self):
        assert_identical(
            SmacheSystem, SmacheConfig.paper_example(8, 8), write_through=False
        )

    def test_latency_bound_long_run(self):
        assert_identical(
            SmacheSystem, SmacheConfig.paper_example(11, 11),
            iterations=8, timing=LATENCY_TIMING,
        )


class TestBaselineParity:
    @pytest.mark.parametrize("shape", [(5, 5), (9, 7), (11, 11)])
    def test_grid_sizes(self, shape):
        assert_identical(BaselineSystem, SmacheConfig.paper_example(*shape))

    @pytest.mark.parametrize("timing", [None, LATENCY_TIMING])
    def test_dram_timings(self, timing):
        assert_identical(
            BaselineSystem, SmacheConfig.paper_example(7, 9), timing=timing
        )


class TestDebugEngineOnRealSystems:
    """The debug engine replays fast scheduling decisions under assertions;
    a clean pass certifies every next_activity implementation on the path."""

    @pytest.mark.parametrize("system_cls", [SmacheSystem, BaselineSystem])
    def test_debug_run_is_clean_and_identical(self, system_cls):
        config = SmacheConfig.paper_example(9, 9)
        _, res_n = run_system(system_cls, config, "naive", timing=LATENCY_TIMING)
        _, res_d = run_system(system_cls, config, "debug", timing=LATENCY_TIMING)
        assert res_d.cycles == res_n.cycles
        assert np.array_equal(res_d.output, res_n.output)


class TestDrainingPortIdleParity:
    def test_run_until_idle_waits_for_draining_write_port(self):
        """Regression: a port still draining (free_at in the future) with
        empty queues is self-scheduled activity — finished() flips when it
        runs dry, and run_until_idle must not sleep through that under the
        fast engine."""
        from repro.memory.dram import DRAMCommand, DRAMModel
        from repro.sim.engine import Simulator

        cycles = {}
        for engine in ("naive", "fast", "debug"):
            sim = Simulator("drain", engine=engine)
            dram = DRAMModel(
                sim, size_words=64,
                timing=DRAMTiming(random_access_cycles=10, read_latency=2),
            )
            dram.write_cmd.push(DRAMCommand(kind="write", addr=3, data=1.0))
            sim.step(2)  # commit the stimulus and start the write
            cycles[engine] = sim.run_until_idle(max_cycles=100_000)
        assert cycles["fast"] == cycles["naive"] == cycles["debug"]


class TestCampaignParity:
    def test_canonical_campaign_json_identical_across_engines(self, tmp_path):
        """The determinism contract survives the engine swap: a simulate
        campaign's canonical JSON is byte-identical under fast and naive."""
        from repro.api import Workbench
        from repro.sweep import SweepSpec
        from repro.pipeline import StencilProblem

        spec = SweepSpec(
            name="engine-parity",
            base=StencilProblem.paper_example(7, 7),
            grid_sizes=((7, 7), (9, 8)),
            max_stream_reaches=(0, None),
            backends=("simulate",),
            systems=("smache", "baseline"),
            iterations=2,
        )
        outputs = {}
        for engine in ("fast", "naive"):
            previous = set_default_engine(engine)
            try:
                outputs[engine] = Workbench(jobs=1).run(spec)
            finally:
                set_default_engine(previous)
        assert outputs["fast"].to_json() == outputs["naive"].to_json()
        # scheduler telemetry rides in meta (non-canonical), tagged per engine
        for engine, result in outputs.items():
            metas = [r.meta for r in result.records]
            assert all(m.get("sim_engine") == engine for m in metas)
            assert all("sim_ticks_executed" in m for m in metas)


class TestReferenceBackendParity:
    def test_simulated_output_matches_vectorized_reference(self):
        """End to end: hardware simulation == vectorized golden model."""
        from repro.pipeline import StencilProblem, evaluate

        problem = StencilProblem.paper_example(9, 9)
        sim = evaluate(problem, backend="simulate", iterations=3)
        ref = evaluate(problem, backend="reference", iterations=3)
        np.testing.assert_allclose(sim.output, ref.output, rtol=1e-12, atol=1e-12)


class TestGridSpecHelpers:
    def test_paper_grid_round_trip(self):
        # guard for the gather-plan cache key: the triple must stay hashable
        grid = GridSpec(shape=(11, 11))
        stencil = StencilShape.four_point_2d()
        boundary = BoundarySpec.paper_2d()
        assert hash((grid, stencil, boundary)) == hash((grid, stencil, boundary))
