"""Unit tests for the shell components (read master, router, write-back, sequencer)."""

import numpy as np
import pytest

from repro.arch.kernel import KernelResult
from repro.arch.shell import (
    TAG_PREFETCH,
    TAG_STREAM,
    ReadJob,
    ReadMaster,
    ResponseRouter,
    WritebackUnit,
)
from repro.arch.smache import SmacheFrontEnd
from repro.arch.system import SmacheSystem
from repro.core.config import SmacheConfig
from repro.memory.dram import DRAMModel
from repro.reference.kernels import AveragingKernel
from repro.reference.stencil_exec import make_test_grid
from repro.sim.engine import Simulator


@pytest.fixture
def rig(paper_config):
    """A simulator with DRAM, front-end, read master and router wired up."""
    sim = Simulator()
    dram = DRAMModel(sim, size_words=512)
    plan = paper_config.plan()
    front_end = SmacheFrontEnd(sim, plan)
    read_master = ReadMaster(sim, dram)
    router = ResponseRouter(sim, dram, front_end)
    return sim, dram, front_end, read_master, router


class TestReadMaster:
    def test_issues_sequential_burst(self, rig):
        sim, dram, front_end, read_master, router = rig
        dram.preload(0, np.arange(64))
        front_end.start_work_instance(1)  # skip prefetch path; gather consumes
        read_master.jobs.push(ReadJob(base=0, length=40, tag=TAG_STREAM))
        # drain the front-end's tuple output so back-pressure does not stall
        # the stream (there is no kernel in this rig)
        while read_master.words_requested < 40:
            if front_end.tuple_out.can_pop():
                front_end.tuple_out.pop()
            sim.step()
            assert sim.cycle < 600
        assert dram.words_read <= 40
        for _ in range(20):
            if front_end.tuple_out.can_pop():
                front_end.tuple_out.pop()
            sim.step()
        assert read_master.finished()

    def test_processes_jobs_in_order(self, rig):
        sim, dram, front_end, read_master, router = rig
        dram.preload(0, np.arange(128))
        front_end.start_work_instance(0)
        read_master.jobs.push(ReadJob(base=0, length=11, tag=TAG_PREFETCH))
        read_master.jobs.push(ReadJob(base=110, length=11, tag=TAG_PREFETCH))
        sim.run_until(lambda: read_master.words_requested == 22, max_cycles=400)
        assert router.routed_prefetch <= 22


class TestResponseRouter:
    def test_routes_by_tag(self, rig):
        sim, dram, front_end, read_master, router = rig
        dram.preload(0, np.arange(256))
        front_end.start_work_instance(0)  # FSM-1 FILL: consumes prefetch words
        read_master.jobs.push(ReadJob(base=0, length=11, tag=TAG_PREFETCH))
        read_master.jobs.push(ReadJob(base=110, length=11, tag=TAG_PREFETCH))
        read_master.jobs.push(ReadJob(base=0, length=30, tag=TAG_STREAM))
        sim.run_until(lambda: router.routed_prefetch == 22, max_cycles=1000)
        assert front_end.statics[0].prefetch_complete or front_end.statics[1].prefetch_complete
        sim.run_until(lambda: router.routed_stream >= 10, max_cycles=1000)
        assert router.routed_stream >= 10


class TestWritebackUnit:
    def test_writes_to_dram_and_feeds_write_through(self, paper_config):
        sim = Simulator()
        dram = DRAMModel(sim, size_words=512)
        plan = paper_config.plan()
        front_end = SmacheFrontEnd(sim, plan)
        results = sim.create_channel("results", 4)
        writeback = WritebackUnit(sim, dram, front_end, results)
        writeback.set_destination(121)
        results.push(KernelResult(index=5, value=2.5))
        results.push(KernelResult(index=115, value=7.5))
        sim.run_until(lambda: dram.writes_completed == 2, max_cycles=100)
        assert dram.storage[121 + 5] == 2.5
        assert dram.storage[121 + 115] == 7.5
        # the covered result reached the static buffer's write bank (FSM-3)
        sim.step(5)
        covered = [s for s in front_end.statics if s.covers(115)][0]
        assert covered.writes == 1

    def test_respects_backpressure(self, paper_config):
        sim = Simulator()
        dram = DRAMModel(sim, size_words=512)
        plan = paper_config.plan()
        front_end = SmacheFrontEnd(sim, plan)
        results = sim.create_channel("results", 8)
        writeback = WritebackUnit(sim, dram, front_end, results)
        for i in range(6):
            if results.can_push():
                results.push(KernelResult(index=i, value=float(i)))
        sim.run_until(lambda: writeback.results_written >= 4, max_cycles=100)
        assert dram.words_written >= 1


class TestWorkSequencer:
    def test_instance_bookkeeping(self, small_config, averaging_kernel):
        system = SmacheSystem(small_config, kernel=averaging_kernel, iterations=3)
        system.load_input(make_test_grid(small_config.grid, kind="ramp"))
        system.run()
        seq = system.sequencer
        assert seq.done
        assert seq.current_instance == 3
        assert len(seq.instance_start_cycles) == 3
        assert len(seq.instance_end_cycles) == 3
        # ping-pong addressing
        assert seq.src_base(0) == 0
        assert seq.dst_base(0) == small_config.grid.size
        assert seq.src_base(1) == small_config.grid.size
        assert seq.dst_base(1) == 0

    def test_zero_iterations_finishes_immediately(self, small_config, averaging_kernel):
        system = SmacheSystem(small_config, kernel=averaging_kernel, iterations=0)
        system.load_input(make_test_grid(small_config.grid, kind="ramp"))
        result = system.run()
        assert result.cycles <= 3
        assert result.dram_words_read == 0

    def test_prefetch_only_on_first_instance(self, small_config, averaging_kernel):
        system = SmacheSystem(small_config, kernel=averaging_kernel, iterations=3)
        system.load_input(make_test_grid(small_config.grid, kind="ramp"))
        system.run()
        prefetch_elements = sum(s.length for s in system.plan.statics)
        assert (
            system.dram.words_read
            == 3 * small_config.grid.size + prefetch_elements
        )
