"""System-level tests: Smache and baseline vs the NumPy reference.

These are the most important tests in the repository: they establish that the
cycle-accurate hardware models compute exactly what the golden model computes,
for a variety of grids, stencils and boundary conditions, and that the
performance counters behave the way the paper's argument requires (contiguous
streaming, 1 read per element for Smache vs n_points reads for the baseline).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.system import BaselineSystem, SmacheSystem, run_baseline, run_smache
from repro.core.boundary import BoundaryKind, BoundarySpec
from repro.core.config import SmacheConfig
from repro.core.grid import GridSpec
from repro.core.partition import StreamBufferMode
from repro.core.stencil import StencilShape
from repro.memory.dram import DRAMTiming
from repro.reference.kernels import AveragingKernel, MaxKernel, SumKernel, WeightedKernel
from repro.reference.stencil_exec import make_test_grid, reference_run


def check_equivalence(config, kernel, iterations=2, kind="random"):
    """Run reference, Smache and baseline; assert all three agree."""
    grid_in = make_test_grid(config.grid, kind=kind)
    reference = reference_run(
        grid_in, config.grid, config.stencil, config.boundary, kernel, iterations=iterations
    )
    smache = run_smache(config, grid_in, iterations=iterations, kernel=kernel)
    baseline = run_baseline(config, grid_in, iterations=iterations, kernel=kernel)
    np.testing.assert_allclose(smache.output, reference, rtol=1e-12, atol=1e-12)
    np.testing.assert_allclose(baseline.output, reference, rtol=1e-12, atol=1e-12)
    return smache, baseline


class TestFunctionalEquivalence:
    def test_paper_case(self, paper_config, averaging_kernel):
        check_equivalence(paper_config, averaging_kernel, iterations=3)

    def test_small_asymmetric_grid(self, averaging_kernel):
        config = SmacheConfig.paper_example(rows=5, cols=13)
        check_equivalence(config, averaging_kernel, iterations=2)

    def test_fully_periodic_five_point(self):
        config = SmacheConfig.periodic_2d(9, 9)
        check_equivalence(config, WeightedKernel.jacobi_2d(), iterations=3)

    def test_open_boundaries_no_static_buffers(self, averaging_kernel):
        config = SmacheConfig(
            grid=GridSpec(shape=(10, 10)),
            stencil=StencilShape.four_point_2d(),
            boundary=BoundarySpec.all_open(2),
        )
        assert config.plan().n_static_buffers == 0
        check_equivalence(config, averaging_kernel, iterations=2)

    def test_mirror_boundaries_star_stencil(self):
        config = SmacheConfig(
            grid=GridSpec(shape=(9, 8)),
            stencil=StencilShape.star_2d(radius=2),
            boundary=BoundarySpec.per_dimension([BoundaryKind.MIRROR, BoundaryKind.MIRROR]),
        )
        check_equivalence(config, AveragingKernel(expected_points=8), iterations=2)

    def test_constant_boundaries_sum_kernel(self):
        config = SmacheConfig(
            grid=GridSpec(shape=(7, 7)),
            stencil=StencilShape.four_point_2d(),
            boundary=BoundarySpec.per_dimension(
                [BoundaryKind.CONSTANT, BoundaryKind.CONSTANT], constant_value=1.25
            ),
        )
        check_equivalence(config, SumKernel(), iterations=2)

    def test_asymmetric_stencil(self):
        config = SmacheConfig(
            grid=GridSpec(shape=(12, 9)),
            stencil=StencilShape.asymmetric_2d(),
            boundary=BoundarySpec.paper_2d(),
        )
        check_equivalence(config, MaxKernel(), iterations=2)

    def test_clamped_diffusion(self):
        config = SmacheConfig(
            grid=GridSpec(shape=(8, 14)),
            stencil=StencilShape.five_point_2d(),
            boundary=BoundarySpec.per_dimension([BoundaryKind.CLAMP, BoundaryKind.CLAMP]),
        )
        check_equivalence(config, WeightedKernel.diffusion_2d(0.15), iterations=3)

    def test_register_only_mode_is_functionally_identical(self, averaging_kernel):
        config = SmacheConfig.paper_example(rows=7, cols=9, mode=StreamBufferMode.REGISTER_ONLY)
        check_equivalence(config, averaging_kernel, iterations=2)

    def test_single_iteration(self, small_config, averaging_kernel):
        check_equivalence(small_config, averaging_kernel, iterations=1)

    def test_many_iterations_stay_in_sync(self, small_config, averaging_kernel):
        check_equivalence(small_config, averaging_kernel, iterations=12)

    def test_zero_iterations_returns_input(self, small_config, averaging_kernel):
        grid_in = make_test_grid(small_config.grid, kind="ramp")
        result = run_smache(small_config, grid_in, iterations=0, kernel=averaging_kernel)
        np.testing.assert_allclose(result.output, grid_in)

    @given(
        rows=st.integers(4, 9),
        cols=st.integers(4, 9),
        periodic_rows=st.booleans(),
        periodic_cols=st.booleans(),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=12, deadline=None)
    def test_random_problems_match_reference(self, rows, cols, periodic_rows, periodic_cols, seed):
        """Property: for random small problems the Smache system equals the reference."""
        config = SmacheConfig(
            grid=GridSpec(shape=(rows, cols)),
            stencil=StencilShape.four_point_2d(),
            boundary=BoundarySpec.per_dimension(
                [
                    BoundaryKind.CIRCULAR if periodic_rows else BoundaryKind.OPEN,
                    BoundaryKind.CIRCULAR if periodic_cols else BoundaryKind.OPEN,
                ]
            ),
        )
        rng = np.random.default_rng(seed)
        grid_in = rng.random(config.grid.shape)
        kernel = AveragingKernel()
        reference = reference_run(
            grid_in, config.grid, config.stencil, config.boundary, kernel, iterations=2
        )
        smache = run_smache(config, grid_in, iterations=2, kernel=kernel)
        np.testing.assert_allclose(smache.output, reference, rtol=1e-12, atol=1e-12)


class TestTrafficAccounting:
    def test_smache_reads_each_element_once_per_instance(self, paper_config, averaging_kernel):
        iterations = 4
        grid_in = make_test_grid(paper_config.grid, kind="ramp")
        result = run_smache(paper_config, grid_in, iterations=iterations, kernel=averaging_kernel)
        n = paper_config.grid.size
        prefetch = sum(s.length for s in paper_config.plan().statics)
        assert result.dram_words_read == iterations * n + prefetch
        assert result.dram_words_written == iterations * n

    def test_baseline_reads_n_points_words_per_element(self, paper_config, averaging_kernel):
        iterations = 4
        grid_in = make_test_grid(paper_config.grid, kind="ramp")
        result = run_baseline(paper_config, grid_in, iterations=iterations, kernel=averaging_kernel)
        n = paper_config.grid.size
        assert result.dram_words_read == iterations * n * 4
        assert result.dram_words_written == iterations * n

    def test_traffic_ratio_is_about_40_percent(self, paper_config, averaging_kernel):
        grid_in = make_test_grid(paper_config.grid, kind="ramp")
        smache = run_smache(paper_config, grid_in, iterations=5, kernel=averaging_kernel)
        baseline = run_baseline(paper_config, grid_in, iterations=5, kernel=averaging_kernel)
        ratio = smache.dram_bytes / baseline.dram_bytes
        assert 0.35 < ratio < 0.45

    def test_smache_accesses_are_overwhelmingly_sequential(self, paper_config, averaging_kernel):
        grid_in = make_test_grid(paper_config.grid, kind="ramp")
        smache = run_smache(paper_config, grid_in, iterations=3, kernel=averaging_kernel)
        assert smache.extra["dram_sequential"] > 10 * smache.extra["dram_random"]

    def test_baseline_accesses_are_overwhelmingly_random(self, paper_config, averaging_kernel):
        grid_in = make_test_grid(paper_config.grid, kind="ramp")
        baseline = run_baseline(paper_config, grid_in, iterations=3, kernel=averaging_kernel)
        assert baseline.extra["dram_random"] > baseline.extra["dram_sequential"]

    def test_operations_counted_per_point(self, small_config, averaging_kernel):
        iterations = 3
        grid_in = make_test_grid(small_config.grid, kind="ramp")
        smache = run_smache(small_config, grid_in, iterations=iterations, kernel=averaging_kernel)
        assert smache.operations == iterations * small_config.grid.size * 4


class TestCyclePerformance:
    def test_smache_is_about_one_cycle_per_point(self, paper_config, averaging_kernel):
        grid_in = make_test_grid(paper_config.grid, kind="ramp")
        result = run_smache(paper_config, grid_in, iterations=10, kernel=averaging_kernel)
        assert result.cycles_per_point < 1.35

    def test_baseline_is_about_five_cycles_per_point(self, paper_config, averaging_kernel):
        grid_in = make_test_grid(paper_config.grid, kind="ramp")
        result = run_baseline(paper_config, grid_in, iterations=10, kernel=averaging_kernel)
        assert 4.5 < result.cycles_per_point < 6.0

    def test_smache_cycle_advantage_grows_with_iterations(self, small_config, averaging_kernel):
        grid_in = make_test_grid(small_config.grid, kind="ramp")
        smache = run_smache(small_config, grid_in, iterations=8, kernel=averaging_kernel)
        baseline = run_baseline(small_config, grid_in, iterations=8, kernel=averaging_kernel)
        assert baseline.cycles > 3 * smache.cycles

    def test_instance_cycles_reported(self, small_config, averaging_kernel):
        grid_in = make_test_grid(small_config.grid, kind="ramp")
        result = run_smache(small_config, grid_in, iterations=5, kernel=averaging_kernel)
        assert len(result.instance_cycles) == 5
        # later instances skip the warm-up prefetch, so they are not slower
        assert result.instance_cycles[-1] <= result.instance_cycles[0] + 2

    def test_execution_time_and_mops(self, small_config, averaging_kernel):
        grid_in = make_test_grid(small_config.grid, kind="ramp")
        result = run_smache(small_config, grid_in, iterations=2, kernel=averaging_kernel)
        t = result.execution_time_us(200.0)
        assert t == pytest.approx(result.cycles / 200.0)
        assert result.mops(200.0) == pytest.approx(result.operations / t)
        with pytest.raises(ValueError):
            result.execution_time_us(0)


class TestArchitecturalInvariants:
    def test_hybrid_window_never_needs_concurrent_bram_reads(self, paper_config, averaging_kernel):
        grid_in = make_test_grid(paper_config.grid, kind="ramp")
        result = run_smache(paper_config, grid_in, iterations=3, kernel=averaging_kernel)
        assert result.extra["max_bram_reads_per_cycle"] <= 1

    def test_all_window_or_static_hits(self, paper_config, averaging_kernel):
        grid_in = make_test_grid(paper_config.grid, kind="ramp")
        result = run_smache(paper_config, grid_in, iterations=2, kernel=averaging_kernel)
        n_reads = result.extra["window_hits"] + result.extra["static_hits"]
        from repro.arch.access_table import AccessTable

        table = AccessTable(paper_config.grid, paper_config.stencil, paper_config.boundary)
        assert n_reads == 2 * table.total_element_reads()

    def test_static_buffers_serve_the_boundary_rows(self, paper_config, averaging_kernel):
        grid_in = make_test_grid(paper_config.grid, kind="ramp")
        system = SmacheSystem(paper_config, kernel=averaging_kernel, iterations=2)
        system.load_input(grid_in)
        system.run()
        # each static buffer is read once per boundary-row element per instance
        for static in system.front_end.statics:
            assert static.reads == 2 * static.spec.length
            assert static.writes == 2 * static.spec.length
            assert static.swaps == 2

    def test_write_through_keeps_static_banks_in_sync_with_dram(
        self, paper_config, averaging_kernel
    ):
        grid_in = make_test_grid(paper_config.grid, kind="random")
        system = SmacheSystem(paper_config, kernel=averaging_kernel, iterations=3)
        system.load_input(grid_in)
        result = system.run()
        flat = result.output.ravel()
        for static in system.front_end.statics:
            bank = static.read_bank_snapshot()
            np.testing.assert_allclose(
                bank, flat[static.spec.start : static.spec.end], rtol=1e-12
            )

    def test_load_input_validates_shape(self, paper_config, averaging_kernel):
        system = SmacheSystem(paper_config, kernel=averaging_kernel, iterations=1)
        with pytest.raises(ValueError):
            system.load_input(np.zeros((3, 3)))
        baseline = BaselineSystem(paper_config, kernel=averaging_kernel, iterations=1)
        with pytest.raises(ValueError):
            baseline.load_input(np.zeros((3, 3)))


class TestWriteThroughAblationBehaviour:
    def test_disabling_write_through_still_correct_but_more_traffic(
        self, small_config, averaging_kernel
    ):
        grid_in = make_test_grid(small_config.grid, kind="random")
        reference = reference_run(
            grid_in,
            small_config.grid,
            small_config.stencil,
            small_config.boundary,
            averaging_kernel,
            iterations=4,
        )
        with_wt = SmacheSystem(small_config, kernel=averaging_kernel, iterations=4)
        with_wt.load_input(grid_in)
        r_with = with_wt.run()
        without_wt = SmacheSystem(
            small_config, kernel=averaging_kernel, iterations=4, write_through=False
        )
        without_wt.load_input(grid_in)
        r_without = without_wt.run()
        np.testing.assert_allclose(r_with.output, reference, rtol=1e-12)
        np.testing.assert_allclose(r_without.output, reference, rtol=1e-12)
        assert r_without.dram_words_read > r_with.dram_words_read
        assert r_without.cycles >= r_with.cycles


class TestDramTimingSensitivity:
    def test_baseline_suffers_more_from_random_penalty(self, small_config, averaging_kernel):
        grid_in = make_test_grid(small_config.grid, kind="ramp")
        slow = DRAMTiming(random_access_cycles=4)
        base_fast = run_baseline(small_config, grid_in, iterations=3, kernel=averaging_kernel)
        base_slow = run_baseline(
            small_config, grid_in, iterations=3, kernel=averaging_kernel, dram_timing=slow
        )
        sm_fast = run_smache(small_config, grid_in, iterations=3, kernel=averaging_kernel)
        sm_slow = run_smache(
            small_config, grid_in, iterations=3, kernel=averaging_kernel, dram_timing=slow
        )
        baseline_slowdown = base_slow.cycles / base_fast.cycles
        smache_slowdown = sm_slow.cycles / sm_fast.cycles
        assert baseline_slowdown > 2.0
        assert smache_slowdown < 1.3
        assert baseline_slowdown > smache_slowdown * 2
