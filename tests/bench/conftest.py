"""Fixtures for the repro.bench test-suite."""

import pathlib

import pytest


@pytest.fixture
def repo_root() -> pathlib.Path:
    """The checkout root, where the committed BENCH_*.json baselines live."""
    return pathlib.Path(__file__).resolve().parents[2]
