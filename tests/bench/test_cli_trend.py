"""The ``python -m repro.bench`` CLI and the trend/worker-mining reports."""

import json

import pytest

from repro.bench.__main__ import main
from repro.bench.history import PerfHistory
from repro.bench.model import load_result
from repro.bench.trend import (
    format_metric_trend,
    format_trend_report,
    format_worker_report,
    mine_worker_throughput,
)


@pytest.fixture
def baselines(repo_root):
    return [str(repo_root / f"BENCH_{s}.json")
            for s in ("sim", "pipeline", "analytic", "serve")]


class TestGateCommand:
    def test_committed_baselines_pass(self, baselines, capsys):
        assert main(["gate", *baselines]) == 0
        out = capsys.readouterr().out
        assert "gate: PASS (4 suite report(s))" in out

    def test_default_files_resolve_in_cwd(self, repo_root, monkeypatch, capsys):
        monkeypatch.chdir(repo_root)
        assert main(["gate"]) == 0

    def test_synthetic_regression_fails(self, repo_root, tmp_path, capsys):
        payload = json.loads((repo_root / "BENCH_sim.json").read_text())
        for bench in payload["benchmarks"]:
            info = bench.get("extra_info") or {}
            if "speedup" in info:
                info["speedup"] = 0.01  # tank every tracked speedup
        regressed = tmp_path / "BENCH_sim.json"
        regressed.write_text(json.dumps(payload))
        assert main(["gate", str(regressed)]) == 1
        out = capsys.readouterr().out
        assert "low" in out and "gate: FAIL" in out

    def test_history_gate_uses_latest_record(self, repo_root, tmp_path, capsys):
        hist = str(tmp_path / "hist.jsonl")
        history = PerfHistory(hist)
        good = load_result(str(repo_root / "BENCH_sim.json"))
        history.append(good, recorded_ts=1.0)
        bad = load_result(str(repo_root / "BENCH_sim.json"))
        bad.metrics["smache_cycles_per_sec.speedup"] = 0.01
        history.append(bad, recorded_ts=2.0)
        assert main(["gate", "--history", hist]) == 1
        # a newer in-band record heals the gate
        history.append(good, recorded_ts=3.0)
        assert main(["gate", "--history", hist]) == 0

    def test_smoke_history_never_gates(self, repo_root, tmp_path, capsys):
        hist = str(tmp_path / "hist.jsonl")
        bad = load_result(str(repo_root / "BENCH_sim.json"))
        bad.metrics["smache_cycles_per_sec.speedup"] = 0.01
        bad.smoke = True
        PerfHistory(hist).append(bad)
        assert main(["gate", "--history", hist]) == 0
        assert "smoke" in capsys.readouterr().out

    def test_empty_history_fails(self, tmp_path, capsys):
        assert main(["gate", "--history", str(tmp_path / "none.jsonl")]) == 1

    def test_custom_references_file(self, baselines, tmp_path, capsys):
        refs = tmp_path / "refs.json"
        refs.write_text(json.dumps(
            {"*": {"sim.smache_cycles_per_sec.speedup": [1e6, -0.1, None, "x"]}}
        ))
        assert main(["gate", baselines[0], "--references", str(refs)]) == 1

    def test_strict_flags_missing_metrics(self, repo_root, tmp_path, capsys):
        res = load_result(str(repo_root / "BENCH_sim.json"))
        del res.metrics["smache_cycles_per_sec.speedup"]
        path = tmp_path / "BENCH_sim.json"
        path.write_text(json.dumps(res.to_payload()))
        assert main(["gate", str(path)]) == 0
        assert main(["gate", str(path), "--strict"]) == 1


class TestRecordCommand:
    def test_record_then_trend(self, baselines, tmp_path, capsys):
        hist = str(tmp_path / "hist.jsonl")
        assert main(["record", *baselines, "--history", hist]) == 0
        out = capsys.readouterr().out
        assert out.count("recorded") == 4
        assert main(["trend", "--history", hist, "--metric", "warm_speedup"]) == 0
        out = capsys.readouterr().out
        assert "analytic.scalar_vs_vectorized.warm_speedup" in out

    def test_unrecognized_filename_errors(self, tmp_path):
        path = tmp_path / "whatever.json"
        path.write_text("{}")
        with pytest.raises(SystemExit):
            main(["record", str(path), "--history", str(tmp_path / "h.jsonl")])


class TestTrendReport:
    def test_deltas_between_records(self, repo_root, tmp_path):
        hist = PerfHistory(str(tmp_path / "hist.jsonl"))
        first = load_result(str(repo_root / "BENCH_sim.json"))
        first.metrics["smache_cycles_per_sec.speedup"] = 4.0
        hist.append(first, recorded_ts=1.0)
        second = load_result(str(repo_root / "BENCH_sim.json"))
        second.metrics["smache_cycles_per_sec.speedup"] = 6.0
        hist.append(second, recorded_ts=2.0)
        text = format_metric_trend(
            hist.records(), "sim.smache_cycles_per_sec.speedup"
        )
        assert "+50.0%" in text

    def test_empty_history_message(self):
        assert format_trend_report([]) == "perf history is empty"

    def test_cli_requires_an_input(self):
        with pytest.raises(SystemExit):
            main(["trend"])


class TestWorkerMining:
    @pytest.fixture
    def event_log(self, tmp_path):
        """A real (tiny) campaign persisted with worker attribution."""
        from repro.api import Workbench
        from repro.sweep.spec import smoke_spec

        path = str(tmp_path / "campaign.events.jsonl")
        Workbench(jobs=2).run(smoke_spec(iterations=1), event_log=path)
        return path

    def test_mined_points_cover_the_campaign(self, event_log):
        workers = mine_worker_throughput(event_log)
        assert workers, "a pool campaign must attribute work to workers"
        total = sum(w.points for w in workers.values())
        assert total == 18  # smoke_spec: 3 grids x 3 reaches x 2 modes
        for stats in workers.values():
            if stats.points and stats.span_seconds:
                assert stats.points_per_second > 0

    def test_worker_report_renders(self, event_log, capsys):
        text = format_worker_report(event_log)
        assert "worker" in text and "point(s) across" in text
        assert main(["trend", "--events", event_log]) == 0
        assert "worker" in capsys.readouterr().out

    def test_missing_worker_stamps_degrade_gracefully(self, tmp_path):
        path = tmp_path / "empty.events.jsonl"
        path.write_text('{"kind": "header", "log": "events", "format": 1}\n')
        assert mine_worker_throughput(str(path)) == {}
        assert "no worker-stamped events" in format_worker_report(str(path))
