"""Gate semantics: bands, exemptions, fallbacks and exit codes."""

import pytest

from repro.bench.gate import check_result, gate_results
from repro.bench.host import HostFingerprint
from repro.bench.model import BenchResult
from repro.bench.references import (
    CONTENDED_EXEMPT,
    band_bounds,
    format_band,
    in_band,
    load_references,
    resolve_references,
)


def host(node="box", machine="x86_64", cpus=8):
    return HostFingerprint(
        node=node, system="Linux", machine=machine, python="3.11.0", cpus=cpus
    )


def result(metrics, *, suite="sim", smoke=False, contended=None, **host_kwargs):
    return BenchResult(
        suite=suite,
        host=host(**host_kwargs),
        metrics=metrics,
        smoke=smoke,
        contended=contended,
    )


REFS = {
    "box:x86_64": {
        "sim.widget.speedup": (4.0, -0.5, None, "x"),
        "sim.widget.ratio": (1.0, -0.1, 0.1, "ratio"),
    },
    "*": {
        "sim.widget.speedup": (2.0, -0.5, None, "x"),
        "sim.widget.count": (10.0, 0.0, 0.0, "n"),
    },
}


class TestBands:
    def test_band_bounds_and_membership(self):
        band = (4.0, -0.5, 0.25, "x")
        assert band_bounds(band) == (2.0, 5.0)
        assert in_band(2.0, band) and in_band(5.0, band)
        assert not in_band(1.99, band)
        assert not in_band(5.01, band)

    def test_unbounded_sides(self):
        assert in_band(1e9, (4.0, -0.5, None, "x"))
        assert in_band(-1e9, (4.0, None, 0.25, "x"))

    def test_format_band(self):
        assert format_band((4.0, -0.5, None, "x")) == "[2, -] x"

    def test_resolution_host_wins_wildcard_fills(self):
        resolved = resolve_references("box:x86_64", REFS)
        assert resolved["sim.widget.speedup"][0] == 4.0  # host entry wins
        assert resolved["sim.widget.count"][0] == 10.0  # wildcard fills the gap
        assert "sim.widget.ratio" in resolved

    def test_unknown_host_falls_back_to_wildcard(self):
        resolved = resolve_references("elsewhere:arm64", REFS)
        assert resolved["sim.widget.speedup"][0] == 2.0
        assert set(resolved) == set(REFS["*"])

    def test_malformed_band_rejected(self):
        with pytest.raises(ValueError):
            resolve_references("h", {"h": {"m": (1.0, 0.0)}})
        with pytest.raises(ValueError):
            resolve_references("h", {"h": {"m": ("ref", 0.0, 0.0, "x")}})


class TestGate:
    def test_in_band_passes_exit_0(self):
        res = result({"widget.speedup": 4.1, "widget.ratio": 1.0, "widget.count": 10})
        reports, code = gate_results([res], REFS)
        assert code == 0
        assert reports[0].passed()
        statuses = {c.metric: c.status for c in reports[0].checks}
        assert statuses["sim.widget.speedup"] == "ok"

    def test_out_of_band_fails_exit_1(self):
        res = result({"widget.speedup": 1.2, "widget.ratio": 1.0, "widget.count": 10})
        reports, code = gate_results([res], REFS)
        assert code == 1
        (failure,) = reports[0].failures()
        assert failure.metric == "sim.widget.speedup"
        assert failure.status == "low"

    def test_high_side_fails_too(self):
        res = result({"widget.ratio": 1.5, "widget.speedup": 4.0, "widget.count": 10})
        _, code = gate_results([res], REFS)
        assert code == 1

    def test_missing_host_reference_falls_back_to_wildcard(self):
        # 1.2 fails the host band [2, -] but passes the wildcard band [1, -]:
        # an unknown host must gate against the wildcard, not the host entry.
        res = result(
            {"widget.speedup": 1.2, "widget.count": 10},
            node="elsewhere", machine="arm64",
        )
        report = check_result(res, REFS)
        assert report.reference_host == "*"
        assert report.passed()

    def test_smoke_results_never_gate(self):
        res = result({"widget.speedup": 0.01, "widget.count": 3}, smoke=True)
        reports, code = gate_results([res], REFS)
        assert code == 0
        assert all(
            c.status == "smoke" for c in reports[0].checks if c.band is not None
        )

    def test_contended_exemption_only_for_listed_metrics(self):
        exempt = next(iter(CONTENDED_EXEMPT))
        suite, rest = exempt.split(".", 1)
        refs = {
            "*": {exempt: (2.0, -0.1, None, "x"), f"{suite}.other": (2.0, -0.1, None, "x")}
        }
        res = result(
            {rest: 0.5, "other": 0.5}, suite=suite, contended=True, cpus=1
        )
        report = check_result(res, refs)
        statuses = {c.metric: c.status for c in report.checks}
        assert statuses[exempt] == "contended"
        assert statuses[f"{suite}.other"] == "low"  # exemption is per-metric
        assert not report.passed()

    def test_uncontended_host_gates_exempt_metrics(self):
        exempt = next(iter(CONTENDED_EXEMPT))
        suite, rest = exempt.split(".", 1)
        refs = {"*": {exempt: (2.0, -0.1, None, "x")}}
        res = result({rest: 0.5}, suite=suite, contended=False)
        assert not check_result(res, refs).passed()

    def test_missing_metric_gates_only_under_strict(self):
        res = result({"widget.speedup": 4.0, "widget.ratio": 1.0})  # no count
        report = check_result(res, REFS)
        assert report.passed()
        assert not report.passed(strict=True)
        assert any(c.status == "missing" for c in report.checks)

    def test_unreferenced_metrics_are_reported_not_gated(self):
        res = result(
            {"widget.speedup": 4.0, "widget.ratio": 1.0, "widget.count": 10,
             "widget.seconds": 123.0}
        )
        report = check_result(res, REFS)
        assert report.passed()
        statuses = {c.metric: c.status for c in report.checks}
        assert statuses["sim.widget.seconds"] == "unreferenced"

    def test_report_format_mentions_verdict_counts(self):
        res = result({"widget.speedup": 1.2, "widget.ratio": 1.0, "widget.count": 10})
        text = check_result(res, REFS).format()
        assert "sim @ box:x86_64" in text
        assert "low" in text


class TestReferenceFiles:
    def test_load_references_roundtrip(self, tmp_path):
        path = tmp_path / "refs.json"
        path.write_text(
            '{"box:x86_64": {"sim.widget.speedup": [4.0, -0.5, null, "x"]}}'
        )
        table = load_references(str(path))
        assert table["box:x86_64"]["sim.widget.speedup"] == (4.0, -0.5, None, "x")

    def test_load_references_rejects_junk(self, tmp_path):
        path = tmp_path / "refs.json"
        path.write_text('{"box": {"m": [1.0]}}')
        with pytest.raises(ValueError):
            load_references(str(path))
