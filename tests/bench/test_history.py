"""Perf-history store: append/read round-trips and tolerant parsing."""

import json

import pytest

from repro.bench.history import HISTORY_FORMAT, PerfHistory, PerfHistoryWarning
from repro.bench.host import HostFingerprint
from repro.bench.model import BenchResult


def result(suite="sim", node="box", smoke=False, **metrics):
    return BenchResult(
        suite=suite,
        host=HostFingerprint(
            node=node, system="Linux", machine="x86_64", python="3.11.0", cpus=4
        ),
        metrics=metrics or {"widget.speedup": 4.0},
        smoke=smoke,
        commit={"id": "abc123", "branch": "main", "dirty": False},
        datetime="2026-08-08T00:00:00+00:00",
    )


class TestAppendRead:
    def test_roundtrip(self, tmp_path):
        history = PerfHistory(str(tmp_path / "hist.jsonl"))
        history.append(result(), recorded_ts=1.0)
        history.append(result(suite="serve"), recorded_ts=2.0)
        records = history.records()
        assert [r.suite for r in records] == ["sim", "serve"]
        assert records[0].metrics == {"widget.speedup": 4.0}
        assert records[0].commit_id == "abc123"
        assert records[0].host_key == "box:x86_64"
        assert records[0].to_result().qualified_metrics() == {
            "sim.widget.speedup": 4.0
        }

    def test_header_written_once(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        history = PerfHistory(str(path))
        history.append(result())
        history.append(result())
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header == {
            "kind": "header", "log": "perf-history", "format": HISTORY_FORMAT,
        }
        assert sum(1 for l in lines if '"header"' in l) == 1

    def test_filters(self, tmp_path):
        history = PerfHistory(str(tmp_path / "hist.jsonl"))
        history.append(result(suite="sim"))
        history.append(result(suite="serve", node="other"))
        history.append(result(suite="sim", smoke=True))
        assert len(history.records(suite="sim")) == 2
        assert len(history.records(suite="sim", include_smoke=False)) == 1
        assert len(history.records(host_key="other:x86_64")) == 1
        assert history.suites() == ["serve", "sim"]

    def test_latest_per_suite_and_host(self, tmp_path):
        history = PerfHistory(str(tmp_path / "hist.jsonl"))
        history.append(result(**{"widget.speedup": 4.0}))
        history.append(result(**{"widget.speedup": 5.0}))
        history.append(result(suite="serve"))
        latest = history.latest()
        assert len(latest) == 2
        by_suite = {r.suite: r for r in latest}
        assert by_suite["sim"].metrics["widget.speedup"] == 5.0

    def test_missing_file_reads_empty(self, tmp_path):
        assert PerfHistory(str(tmp_path / "nope.jsonl")).records() == []


class TestTolerance:
    def test_malformed_lines_skipped_with_warning(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        history = PerfHistory(str(path))
        history.append(result())
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "perf", "suite": "sim"\n')  # torn JSON
            fh.write('{"kind": "perf", "metrics": {"x": 1}}\n')  # no suite
            fh.write('{"kind": "mystery"}\n')  # unknown kind
        history.append(result(suite="serve"))
        with pytest.warns(PerfHistoryWarning):
            records = history.records()
        assert [r.suite for r in records] == ["sim", "serve"]
        assert history.dropped_lines == 3

    def test_torn_tail_is_newline_terminated_on_append(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        history = PerfHistory(str(path))
        history.append(result())
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "perf", "suite": "si')  # killed mid-write
        with pytest.warns(PerfHistoryWarning):
            assert len(history.records()) == 1
        history.append(result(suite="serve"))
        with pytest.warns(PerfHistoryWarning):
            records = history.records()
        assert [r.suite for r in records] == ["sim", "serve"]

    def test_commit_defaults_to_git_of_cwd(self, tmp_path):
        # The repo this test runs in is a git checkout, so appending an
        # envelope with no commit info picks up a real commit id.
        history = PerfHistory(str(tmp_path / "hist.jsonl"))
        bare = result()
        bare.commit = None
        record = history.append(bare)
        assert record.commit is None or "id" in record.commit
