"""Envelope model: compat reader, flattening, hoisted flags, host fingerprint."""

import json

import pytest

from repro.bench.host import (
    HostFingerprint,
    contention,
    cpu_count,
    current_host,
    host_extra_info,
    smoke_mode,
)
from repro.bench.model import (
    BENCH_FORMAT,
    BenchFormatError,
    BenchResult,
    load_result,
    suite_of_path,
)


def pytest_benchmark_payload():
    """A minimal legacy dump shaped like the committed BENCH_*.json files."""
    return {
        "machine_info": {
            "node": "vm",
            "system": "Linux",
            "machine": "x86_64",
            "python_version": "3.11.0",
            "cpu": {"count": 1},
        },
        "commit_info": {
            "id": "deadbeef", "time": "t", "branch": "main", "dirty": True,
        },
        "datetime": "2026-08-08T00:00:00+00:00",
        "benchmarks": [
            {
                "name": "test_bench_widget",
                "fullname": "benchmarks/bench_sim.py::T::test_bench_widget",
                "extra_info": {
                    "speedup": 5.05,
                    "smoke": False,
                    "contended": True,
                    "cycles": 1000,
                    "label": "not-a-number",
                    "flag": True,
                },
                "stats": {"min": 0.25},
            }
        ],
    }


class TestCompatReader:
    def test_legacy_pytest_benchmark(self):
        res = BenchResult.from_payload(pytest_benchmark_payload())
        assert res.suite == "sim"  # inferred from the fullname
        assert res.host.key == "vm:x86_64"
        assert res.host.cpus == 1
        assert res.contended is True and res.smoke is False
        assert res.metrics["widget.speedup"] == 5.05
        assert res.metrics["widget.seconds"] == 0.25
        assert res.metrics["widget.cycles"] == 1000
        # flags and non-numeric extras never become metrics
        assert "widget.smoke" not in res.metrics
        assert "widget.contended" not in res.metrics
        assert "widget.label" not in res.metrics
        assert "widget.flag" not in res.metrics
        assert res.commit["id"] == "deadbeef"

    def test_smoke_hoisted_from_any_benchmark(self):
        payload = pytest_benchmark_payload()
        payload["benchmarks"][0]["extra_info"]["smoke"] = True
        assert BenchResult.from_payload(payload).smoke is True

    def test_native_envelope_roundtrip(self):
        res = BenchResult.from_payload(pytest_benchmark_payload())
        again = BenchResult.from_payload(res.to_payload())
        assert again == res
        assert res.to_payload()["bench_format"] == BENCH_FORMAT

    def test_newer_format_rejected(self):
        with pytest.raises(BenchFormatError):
            BenchResult.from_payload({"bench_format": BENCH_FORMAT + 1})

    def test_junk_rejected(self):
        with pytest.raises(BenchFormatError):
            BenchResult.from_payload({"whatever": 1})

    def test_load_result_infers_suite_from_filename(self, tmp_path):
        payload = pytest_benchmark_payload()
        payload["benchmarks"][0]["fullname"] = "somewhere/else.py::t"
        path = tmp_path / "BENCH_ci_serve.json"
        path.write_text(json.dumps(payload))
        assert load_result(str(path)).suite == "serve"

    def test_suite_of_path(self):
        assert suite_of_path("BENCH_sim.json") == "sim"
        assert suite_of_path("/a/b/BENCH_ci_pipeline.json") == "pipeline"
        assert suite_of_path("other.json") is None


class TestCommittedBaselines:
    @pytest.mark.parametrize("suite", ["sim", "pipeline", "analytic", "serve"])
    def test_committed_baselines_load(self, repo_root, suite):
        res = load_result(str(repo_root / f"BENCH_{suite}.json"))
        assert res.suite == suite
        assert res.metrics, "committed baselines must yield metrics"
        assert res.host.key
        assert not res.smoke, "committed baselines must be non-smoke runs"


class TestHost:
    def test_fingerprint_roundtrip_and_key(self):
        fp = HostFingerprint(
            node="vm", system="Linux", machine="x86_64", python="3.11", cpus=2
        )
        assert fp.key == "vm:x86_64"
        assert HostFingerprint.from_json_dict(fp.to_json_dict()) == fp

    def test_current_host_is_self_consistent(self):
        fp = current_host()
        assert fp.key == f"{fp.node}:{fp.machine}"
        assert fp.cpus == cpu_count()

    def test_smoke_mode_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SMOKE", raising=False)
        assert smoke_mode() is False
        monkeypatch.setenv("REPRO_BENCH_SMOKE", "0")
        assert smoke_mode() is False
        monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")
        assert smoke_mode() is True

    def test_contention_needs_enough_cores(self):
        cpus = cpu_count()
        assert contention(jobs=(cpus or 0) + 1) is True

    def test_host_extra_info_stamps_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")
        extra = host_extra_info(jobs=1)
        assert set(extra) == {"smoke", "cpus", "contended"}
        assert extra["smoke"] is True
