"""Shared fixtures for the test-suite."""

import numpy as np
import pytest

from repro.core.boundary import BoundarySpec
from repro.core.config import SmacheConfig
from repro.core.grid import GridSpec
from repro.core.stencil import StencilShape
from repro.reference.kernels import AveragingKernel


@pytest.fixture
def paper_config() -> SmacheConfig:
    """The paper's 11x11 validation configuration."""
    return SmacheConfig.paper_example()


@pytest.fixture
def small_config() -> SmacheConfig:
    """A smaller 7x9 variant of the paper's configuration (faster sims)."""
    return SmacheConfig.paper_example(rows=7, cols=9)


@pytest.fixture
def grid_11x11() -> GridSpec:
    """An 11x11 grid of 4-byte words."""
    return GridSpec(shape=(11, 11), word_bytes=4)


@pytest.fixture
def four_point() -> StencilShape:
    """The paper's 4-point stencil."""
    return StencilShape.four_point_2d()


@pytest.fixture
def paper_boundary() -> BoundarySpec:
    """Circular top/bottom, open left/right."""
    return BoundarySpec.paper_2d()


@pytest.fixture
def averaging_kernel() -> AveragingKernel:
    """The 4-point averaging filter."""
    return AveragingKernel()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(1234)
