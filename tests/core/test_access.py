"""Tests for repro.core.access: the stream/tuple/reach formal model."""

import pytest

from repro.core.access import (
    access_histogram,
    interior_reach,
    max_reach,
    reach_of,
    stream_tuples,
    tuple_for,
)
from repro.core.boundary import BoundaryKind, BoundarySpec
from repro.core.grid import GridSpec, IterationPattern
from repro.core.stencil import StencilShape


class TestReachOf:
    def test_empty_is_zero(self):
        assert reach_of([]) == 0

    def test_singleton_is_zero(self):
        assert reach_of([5]) == 0

    def test_paper_example(self):
        # tuple (m[i], m[i-1], m[i+1], m[i-k], m[i+k]) has reach 2k
        k = 7
        assert reach_of([0, -1, 1, -k, k]) == 2 * k

    def test_asymmetric(self):
        assert reach_of([-3, 10]) == 13


class TestTupleFor:
    def test_interior_tuple_11x11(self, grid_11x11, four_point, paper_boundary):
        t = tuple_for(grid_11x11, four_point, paper_boundary, 60)  # (5, 5)
        assert t.centre_linear == 60
        assert sorted(t.stream_offsets) == [-11, -1, 1, 11]
        assert t.reach == 22
        assert t.n_existing == 4

    def test_top_left_corner_tuple(self, grid_11x11, four_point, paper_boundary):
        t = tuple_for(grid_11x11, four_point, paper_boundary, 0)
        # north wraps to 110 (offset +110), west skipped, east +1, south +11
        assert sorted(t.stream_offsets) == [1, 11, 110]
        assert t.reach == 109
        assert t.max_abs_offset == 110

    def test_bottom_right_corner_tuple(self, grid_11x11, four_point, paper_boundary):
        t = tuple_for(grid_11x11, four_point, paper_boundary, 120)
        # south wraps to 10 (offset -110), east skipped, west -1, north -11
        assert sorted(t.stream_offsets) == [-110, -11, -1]

    def test_custom_centre_linear(self, grid_11x11, four_point, paper_boundary):
        t = tuple_for(grid_11x11, four_point, paper_boundary, position=3, centre_linear=60)
        assert t.position == 3
        assert t.centre_linear == 60

    def test_shape_key_equal_for_same_case(self, grid_11x11, four_point, paper_boundary):
        t1 = tuple_for(grid_11x11, four_point, paper_boundary, 60)
        t2 = tuple_for(grid_11x11, four_point, paper_boundary, 61)
        assert t1.shape_key == t2.shape_key

    def test_shape_key_differs_between_cases(self, grid_11x11, four_point, paper_boundary):
        interior = tuple_for(grid_11x11, four_point, paper_boundary, 60)
        corner = tuple_for(grid_11x11, four_point, paper_boundary, 0)
        assert interior.shape_key != corner.shape_key

    def test_constant_boundary_included_in_shape_key(self, grid_11x11, four_point):
        open_spec = BoundarySpec.all_open(2)
        const_spec = BoundarySpec.per_dimension(
            [BoundaryKind.CONSTANT, BoundaryKind.CONSTANT], constant_value=1.0
        )
        t_open = tuple_for(grid_11x11, four_point, open_spec, 0)
        t_const = tuple_for(grid_11x11, four_point, const_spec, 0)
        assert t_open.shape_key != t_const.shape_key


class TestStreamTuples:
    def test_yields_one_tuple_per_position(self, grid_11x11, four_point, paper_boundary):
        tuples = list(stream_tuples(grid_11x11, four_point, paper_boundary))
        assert len(tuples) == 121
        assert [t.position for t in tuples] == list(range(121))

    def test_respects_iteration_pattern(self, grid_11x11, four_point, paper_boundary):
        pattern = IterationPattern.from_indices(grid_11x11, [60, 0, 120])
        tuples = list(stream_tuples(grid_11x11, four_point, paper_boundary, pattern))
        assert [t.centre_linear for t in tuples] == [60, 0, 120]

    def test_max_reach_paper_case_is_grid_spanning(self, grid_11x11, four_point, paper_boundary):
        # top-edge tuples span offsets -1 .. +110, i.e. essentially the whole grid
        assert max_reach(grid_11x11, four_point, paper_boundary) == 111

    def test_max_reach_open_boundaries_is_interior_reach(self, grid_11x11, four_point):
        spec = BoundarySpec.all_open(2)
        assert max_reach(grid_11x11, four_point, spec) == 22

    def test_interior_reach_helper(self, grid_11x11, four_point):
        assert interior_reach(grid_11x11, four_point) == 22


class TestAccessHistogram:
    def test_paper_case_has_nine_cases(self, grid_11x11, four_point, paper_boundary):
        hist = access_histogram(grid_11x11, four_point, paper_boundary)
        assert len(hist) == 9
        assert sum(hist.values()) == 121

    def test_paper_case_population_breakdown(self, grid_11x11, four_point, paper_boundary):
        hist = access_histogram(grid_11x11, four_point, paper_boundary)
        counts = sorted(hist.values())
        # 4 corners (1 position each), 4 edges (9 positions each), interior (81)
        assert counts == [1, 1, 1, 1, 9, 9, 9, 9, 81]

    def test_fully_periodic_has_single_case(self, grid_11x11, four_point):
        hist = access_histogram(grid_11x11, four_point, BoundarySpec.all_circular(2))
        # wrap offsets differ between first/last rows and columns, so the case
        # count is 9 again, but every tuple has exactly 4 existing accesses
        assert sum(hist.values()) == 121

    def test_open_boundaries_case_count(self, grid_11x11, four_point):
        hist = access_histogram(grid_11x11, four_point, BoundarySpec.all_open(2))
        assert len(hist) == 9
