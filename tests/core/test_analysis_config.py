"""Tests for repro.core.analysis and repro.core.config."""

from dataclasses import replace

import pytest

from repro.core.analysis import analyse_static_buffers, required_static_buffer_count
from repro.core.boundary import BoundaryKind, BoundarySpec
from repro.core.config import SmacheConfig
from repro.core.grid import GridSpec
from repro.core.partition import StreamBufferMode
from repro.core.stencil import StencilShape


class TestAnalysis:
    def test_paper_case_summary(self, paper_config):
        analysis = paper_config.analysis()
        assert analysis.n_cases == 9
        assert analysis.n_ranges == 33
        assert analysis.n_static_buffers == 2
        assert analysis.needs_static_buffers
        assert analysis.stream_reach == 22
        assert analysis.max_reach == 111  # top-edge tuples span -1 .. +110

    def test_open_boundaries_need_no_static_buffers(self):
        analysis = analyse_static_buffers(
            GridSpec(shape=(11, 11)),
            StencilShape.four_point_2d(),
            BoundarySpec.all_open(2),
        )
        assert not analysis.needs_static_buffers
        assert analysis.n_static_buffers == 0

    def test_required_static_buffer_count_shortcut(self, paper_config):
        assert (
            required_static_buffer_count(
                paper_config.grid, paper_config.stencil, paper_config.boundary
            )
            == 2
        )

    def test_describe_contains_buffer_regions(self, paper_config):
        text = paper_config.analysis().describe()
        assert "static buffers    : 2" in text
        assert "grid[0:11]" in text

    def test_analysis_respects_reach_constraint(self, paper_config):
        analysis = analyse_static_buffers(
            paper_config.grid,
            paper_config.stencil,
            paper_config.boundary,
            max_stream_reach=4,
        )
        assert analysis.stream_reach <= 4
        # offloading the +-11 row offsets forces far more static storage
        assert analysis.plan.static_elements > 22


class TestConfigConstruction:
    def test_paper_example_defaults(self):
        config = SmacheConfig.paper_example()
        assert config.grid.shape == (11, 11)
        assert config.stencil.n_points == 4
        assert config.mode is StreamBufferMode.HYBRID

    def test_paper_example_overrides(self):
        config = SmacheConfig.paper_example(7, 9, mode=StreamBufferMode.REGISTER_ONLY)
        assert config.grid.shape == (7, 9)
        assert config.mode is StreamBufferMode.REGISTER_ONLY

    def test_periodic_2d_factory(self):
        config = SmacheConfig.periodic_2d(16, 16)
        assert config.boundary.has_circular()
        assert config.stencil.includes_centre

    def test_effective_word_bits_defaults_to_grid(self):
        assert SmacheConfig.paper_example().effective_word_bits == 32

    def test_effective_word_bits_override(self):
        assert SmacheConfig.paper_example(word_bits=16).effective_word_bits == 16


class TestTwoLayerCustomisation:
    def test_structural_signature(self, paper_config):
        sig = paper_config.structural_signature()
        assert sig["n_static_buffers"] == 2
        assert sig["mode"] == "h"
        assert sig["n_taps"] == 4

    def test_parameters_layer(self, paper_config):
        params = paper_config.parameters()
        assert params["grid_shape"] == (11, 11)
        assert params["window_depth"] == 25
        assert len(params["static_buffers"]) == 2

    def test_compatibility_same_problem(self, paper_config):
        assert paper_config.is_structurally_compatible(paper_config)

    def test_larger_grid_same_structure_is_compatible(self, paper_config):
        bigger = SmacheConfig.paper_example(101, 101)
        # same stencil/boundary shape -> same number of static buffers
        assert paper_config.is_structurally_compatible(bigger)
        assert bigger.is_structurally_compatible(paper_config)

    def test_problem_needing_fewer_buffers_is_compatible(self, paper_config):
        open_problem = SmacheConfig(
            grid=GridSpec(shape=(11, 11)),
            stencil=StencilShape.four_point_2d(),
            boundary=BoundarySpec.all_open(2),
        )
        assert paper_config.is_structurally_compatible(open_problem)
        assert not open_problem.is_structurally_compatible(paper_config)

    def test_mode_mismatch_is_incompatible(self, paper_config):
        other = replace(paper_config, mode=StreamBufferMode.REGISTER_ONLY)
        assert not paper_config.is_structurally_compatible(other)

    def test_describe_runs(self, paper_config):
        text = paper_config.describe()
        assert "SmacheConfig" in text
        assert "stream mapping" in text


class TestConfigPlanCaching:
    def test_plan_and_partition_consistent(self, paper_config):
        plan = paper_config.plan()
        partition = paper_config.partition(plan)
        assert partition.depth == plan.stream.depth

    def test_cost_estimate_uses_mode(self, paper_config):
        hybrid = paper_config.cost_estimate()
        reg_only = replace(paper_config, mode=StreamBufferMode.REGISTER_ONLY).cost_estimate()
        assert hybrid.b_stream_bits > 0
        assert reg_only.b_stream_bits == 0

    def test_custom_register_elements(self, paper_config):
        custom = replace(
            paper_config, mode=StreamBufferMode.CUSTOM, register_elements=20
        )
        est = custom.cost_estimate()
        assert est.r_stream_bits == 20 * 32
