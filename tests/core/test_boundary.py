"""Tests for repro.core.boundary: boundary kinds and access resolution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boundary import (
    BoundaryKind,
    BoundarySpec,
    EdgeBehaviour,
    ResolutionKind,
    _mirror_index,
)
from repro.core.grid import GridSpec
from repro.core.stencil import StencilShape


@pytest.fixture
def grid():
    return GridSpec(shape=(11, 11))


class TestConstruction:
    def test_all_open(self):
        spec = BoundarySpec.all_open(2)
        assert spec.ndim == 2
        assert not spec.has_circular()

    def test_all_circular(self):
        spec = BoundarySpec.all_circular(3)
        assert spec.ndim == 3
        assert spec.has_circular()

    def test_paper_2d_is_circular_rows_open_cols(self):
        spec = BoundarySpec.paper_2d()
        assert spec.kind_at(0, high_side=False) is BoundaryKind.CIRCULAR
        assert spec.kind_at(0, high_side=True) is BoundaryKind.CIRCULAR
        assert spec.kind_at(1, high_side=False) is BoundaryKind.OPEN
        assert spec.kind_at(1, high_side=True) is BoundaryKind.OPEN

    def test_per_dimension(self):
        spec = BoundarySpec.per_dimension([BoundaryKind.MIRROR, BoundaryKind.CLAMP])
        assert spec.kind_at(0, True) is BoundaryKind.MIRROR
        assert spec.kind_at(1, False) is BoundaryKind.CLAMP

    def test_mixed_edges(self):
        spec = BoundarySpec(
            edges=(EdgeBehaviour(low=BoundaryKind.OPEN, high=BoundaryKind.CIRCULAR),)
        )
        assert spec.kind_at(0, high_side=False) is BoundaryKind.OPEN
        assert spec.kind_at(0, high_side=True) is BoundaryKind.CIRCULAR

    def test_empty_edges_rejected(self):
        with pytest.raises(ValueError):
            BoundarySpec(edges=())

    def test_describe_mentions_kinds(self):
        text = BoundarySpec.paper_2d().describe()
        assert "circular" in text and "open" in text


class TestResolveInterior:
    def test_interior_point_unaffected(self, grid):
        spec = BoundarySpec.paper_2d()
        point = spec.resolve(grid, (5, 5), (1, 0))
        assert point.kind is ResolutionKind.INTERIOR
        assert point.linear_index == grid.linear_index((6, 5))
        assert point.exists

    def test_arity_mismatch_raises(self, grid):
        spec = BoundarySpec.all_open(3)
        with pytest.raises(ValueError):
            spec.resolve(grid, (0, 0), (1, 0))

    def test_coord_arity_mismatch_raises(self, grid):
        spec = BoundarySpec.all_open(2)
        with pytest.raises(ValueError):
            spec.resolve(grid, (0,), (1, 0))


class TestResolveCircular:
    def test_north_of_top_row_wraps_to_bottom(self, grid):
        spec = BoundarySpec.paper_2d()
        point = spec.resolve(grid, (0, 3), (-1, 0))
        assert point.kind is ResolutionKind.WRAPPED
        assert point.linear_index == grid.linear_index((10, 3))

    def test_south_of_bottom_row_wraps_to_top(self, grid):
        spec = BoundarySpec.paper_2d()
        point = spec.resolve(grid, (10, 7), (1, 0))
        assert point.kind is ResolutionKind.WRAPPED
        assert point.linear_index == grid.linear_index((0, 7))

    def test_wrap_spans_multiple_rows(self, grid):
        spec = BoundarySpec.all_circular(2)
        point = spec.resolve(grid, (0, 0), (-3, 0))
        assert point.linear_index == grid.linear_index((8, 0))

    def test_full_wrap_is_identity(self, grid):
        spec = BoundarySpec.all_circular(2)
        point = spec.resolve(grid, (4, 4), (11, 0))
        assert point.linear_index == grid.linear_index((4, 4))
        assert point.kind is ResolutionKind.WRAPPED


class TestResolveOpen:
    def test_west_of_left_column_is_skipped(self, grid):
        spec = BoundarySpec.paper_2d()
        point = spec.resolve(grid, (5, 0), (0, -1))
        assert point.kind is ResolutionKind.SKIPPED
        assert not point.exists
        assert point.linear_index is None

    def test_east_of_right_column_is_skipped(self, grid):
        spec = BoundarySpec.paper_2d()
        assert spec.resolve(grid, (5, 10), (0, 1)).kind is ResolutionKind.SKIPPED

    def test_corner_open_dimension_wins_over_circular(self, grid):
        # At (0,0) the offset (-1,-1) leaves the grid in both dimensions:
        # circular would wrap dim 0, but dim 1 is open, so the access is skipped.
        spec = BoundarySpec.paper_2d()
        assert spec.resolve(grid, (0, 0), (-1, -1)).kind is ResolutionKind.SKIPPED


class TestResolveClampMirrorConstant:
    def test_clamp_to_edge(self, grid):
        spec = BoundarySpec.per_dimension([BoundaryKind.CLAMP, BoundaryKind.CLAMP])
        point = spec.resolve(grid, (0, 5), (-3, 0))
        assert point.kind is ResolutionKind.WRAPPED
        assert point.linear_index == grid.linear_index((0, 5))

    def test_mirror_reflects_without_repeating_edge(self, grid):
        spec = BoundarySpec.per_dimension([BoundaryKind.MIRROR, BoundaryKind.MIRROR])
        point = spec.resolve(grid, (0, 5), (-1, 0))
        assert point.linear_index == grid.linear_index((1, 5))
        point = spec.resolve(grid, (10, 5), (2, 0))
        assert point.linear_index == grid.linear_index((8, 5))

    def test_constant_substitutes_value(self, grid):
        spec = BoundarySpec.per_dimension(
            [BoundaryKind.CONSTANT, BoundaryKind.CONSTANT], constant_value=2.5
        )
        point = spec.resolve(grid, (0, 0), (-1, 0))
        assert point.kind is ResolutionKind.CONSTANT
        assert point.constant_value == 2.5
        assert not point.exists

    def test_mirror_single_extent_dimension(self):
        grid = GridSpec(shape=(1, 5))
        spec = BoundarySpec.per_dimension([BoundaryKind.MIRROR, BoundaryKind.MIRROR])
        point = spec.resolve(grid, (0, 2), (-1, 0))
        assert point.linear_index == grid.linear_index((0, 2))

    def test_mirror_index_helper_period(self):
        assert _mirror_index(-1, 5) == 1
        assert _mirror_index(5, 5) == 3
        assert _mirror_index(-4, 5) == 4
        assert _mirror_index(8, 5) == 0


class TestResolveStencil:
    def test_interior_stencil_has_all_points(self, grid):
        spec = BoundarySpec.paper_2d()
        points = spec.resolve_stencil(grid, (5, 5), StencilShape.four_point_2d())
        assert len(points) == 4
        assert all(p.exists for p in points)

    def test_corner_stencil_mixes_kinds(self, grid):
        spec = BoundarySpec.paper_2d()
        points = spec.resolve_stencil(grid, (0, 0), StencilShape.four_point_2d())
        kinds = sorted(p.kind.value for p in points)
        assert kinds == ["interior", "interior", "skipped", "wrapped"]

    def test_grid_boundary_dim_mismatch_raises(self):
        grid = GridSpec(shape=(4, 4, 4))
        with pytest.raises(ValueError):
            BoundarySpec.paper_2d().resolve(grid, (0, 0, 0), (1, 0, 0))


circular_or_mirror = st.sampled_from(
    [BoundaryKind.CIRCULAR, BoundaryKind.MIRROR, BoundaryKind.CLAMP]
)


class TestResolutionProperties:
    @given(
        rows=st.integers(2, 10),
        cols=st.integers(2, 10),
        kind0=circular_or_mirror,
        kind1=circular_or_mirror,
        dr=st.integers(-6, 6),
        dc=st.integers(-6, 6),
        r=st.integers(0, 9),
        c=st.integers(0, 9),
    )
    @settings(max_examples=80, deadline=None)
    def test_wrapping_kinds_always_resolve_in_grid(self, rows, cols, kind0, kind1, dr, dc, r, c):
        """Circular / mirror / clamp edges always produce a valid grid element."""
        grid = GridSpec(shape=(rows, cols))
        spec = BoundarySpec.per_dimension([kind0, kind1])
        centre = (min(r, rows - 1), min(c, cols - 1))
        point = spec.resolve(grid, centre, (dr, dc))
        assert point.exists
        assert 0 <= point.linear_index < grid.size

    @given(
        rows=st.integers(2, 8),
        cols=st.integers(2, 8),
        dr=st.integers(-4, 4),
        dc=st.integers(-4, 4),
        r=st.integers(0, 7),
        c=st.integers(0, 7),
    )
    @settings(max_examples=80, deadline=None)
    def test_circular_matches_numpy_modulo(self, rows, cols, dr, dc, r, c):
        """Circular resolution agrees with NumPy's modular indexing."""
        grid = GridSpec(shape=(rows, cols))
        spec = BoundarySpec.all_circular(2)
        centre = (min(r, rows - 1), min(c, cols - 1))
        point = spec.resolve(grid, centre, (dr, dc))
        expected = np.ravel_multi_index(
            ((centre[0] + dr) % rows, (centre[1] + dc) % cols), (rows, cols)
        )
        assert point.linear_index == expected

    @given(
        rows=st.integers(2, 8),
        cols=st.integers(2, 8),
        r=st.integers(0, 7),
        c=st.integers(0, 7),
        dr=st.integers(-3, 3),
        dc=st.integers(-3, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_in_grid_targets_are_never_modified(self, rows, cols, r, c, dr, dc):
        """If centre+offset is already inside the grid, every kind leaves it alone."""
        grid = GridSpec(shape=(rows, cols))
        centre = (min(r, rows - 1), min(c, cols - 1))
        target = (centre[0] + dr, centre[1] + dc)
        if not grid.contains(target):
            return
        for kind in BoundaryKind:
            spec = BoundarySpec.per_dimension([kind, kind])
            point = spec.resolve(grid, centre, (dr, dc))
            assert point.kind is ResolutionKind.INTERIOR
            assert point.linear_index == grid.linear_index(target)
