"""Tests for repro.core.buffers: buffer specifications."""

import pytest

from repro.core.buffers import PIPELINE_SLACK, StaticBufferSpec, StreamBufferSpec


class TestStreamBufferSpec:
    def test_depth_includes_slack(self):
        spec = StreamBufferSpec(reach=22, window_lo=-11, window_hi=11, word_bits=32)
        assert spec.depth == 22 + PIPELINE_SLACK

    def test_total_bits(self):
        spec = StreamBufferSpec(reach=22, window_lo=-11, window_hi=11, word_bits=32)
        assert spec.total_bits == 25 * 32

    def test_zero_reach_allowed(self):
        spec = StreamBufferSpec(reach=0, window_lo=0, window_hi=0, word_bits=32)
        assert spec.depth == PIPELINE_SLACK

    def test_inconsistent_window_rejected(self):
        with pytest.raises(ValueError):
            StreamBufferSpec(reach=10, window_lo=-3, window_hi=3, word_bits=32)

    def test_negative_reach_rejected(self):
        with pytest.raises(ValueError):
            StreamBufferSpec(reach=-1, window_lo=0, window_hi=-1, word_bits=32)

    def test_zero_word_bits_rejected(self):
        with pytest.raises(ValueError):
            StreamBufferSpec(reach=4, window_lo=-2, window_hi=2, word_bits=0)

    def test_custom_slack(self):
        spec = StreamBufferSpec(reach=10, window_lo=-5, window_hi=5, word_bits=16, slack=1)
        assert spec.depth == 11


class TestStaticBufferSpec:
    def test_double_buffered_doubles_bits(self):
        spec = StaticBufferSpec(name="row0", start=0, length=11, word_bits=32)
        assert spec.banks == 2
        assert spec.total_bits == 11 * 32 * 2

    def test_single_buffered(self):
        spec = StaticBufferSpec(
            name="row0", start=0, length=11, word_bits=32, double_buffered=False
        )
        assert spec.banks == 1
        assert spec.total_bits == 11 * 32

    def test_covers(self):
        spec = StaticBufferSpec(name="b", start=110, length=11, word_bits=32)
        assert spec.covers(110)
        assert spec.covers(120)
        assert not spec.covers(121)
        assert not spec.covers(109)

    def test_end(self):
        assert StaticBufferSpec(name="b", start=5, length=3, word_bits=32).end == 8

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            StaticBufferSpec(name="b", start=0, length=0, word_bits=32)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            StaticBufferSpec(name="b", start=-1, length=4, word_bits=32)
