"""Tests for repro.core.cost_model — including the exact Table I estimates."""

import pytest

from repro.core.config import SmacheConfig
from repro.core.cost_model import compare_estimates, estimate_memory_cost
from repro.core.partition import StreamBufferMode, partition_for_plan
from repro.eval.paper_constants import PAPER_TABLE1


class TestTableIEstimates:
    """The cost model reproduces every Estimate row of Table I exactly."""

    @pytest.mark.parametrize(
        "shape,mode,key",
        [
            ((11, 11), StreamBufferMode.REGISTER_ONLY, ("11x11", "r")),
            ((11, 11), StreamBufferMode.HYBRID, ("11x11", "h")),
            ((1024, 1024), StreamBufferMode.REGISTER_ONLY, ("1024x1024", "r")),
            ((1024, 1024), StreamBufferMode.HYBRID, ("1024x1024", "h")),
        ],
    )
    def test_estimate_matches_paper(self, shape, mode, key):
        config = SmacheConfig.paper_example(shape[0], shape[1], mode=mode)
        estimate = config.cost_estimate()
        assert dict(estimate.as_table_row()) == PAPER_TABLE1[key]["estimate"]


class TestEstimateStructure:
    def test_totals_are_sums(self, paper_config):
        est = paper_config.cost_estimate()
        assert est.r_total_bits == est.r_static_bits + est.r_stream_bits
        assert est.b_total_bits == est.b_static_bits + est.b_stream_bits
        assert est.total_bits == est.r_total_bits + est.b_total_bits

    def test_statics_in_registers_option(self, paper_config):
        plan = paper_config.plan()
        est = estimate_memory_cost(plan, statics_in_bram=False)
        assert est.b_static_bits == 0
        assert est.r_static_bits == plan.static_bits

    def test_explicit_partition_overrides_mode(self, paper_config):
        plan = paper_config.plan()
        partition = partition_for_plan(plan, StreamBufferMode.REGISTER_ONLY)
        est = estimate_memory_cost(plan, StreamBufferMode.HYBRID, partition=partition)
        assert est.b_stream_bits == 0
        assert est.r_stream_bits == 800

    def test_register_only_vs_hybrid_total_bram_relationship(self):
        # Hybrid moves window bits into BRAM, so its BRAM total is strictly
        # larger and its register total strictly smaller.
        cfg_r = SmacheConfig.paper_example(mode=StreamBufferMode.REGISTER_ONLY)
        cfg_h = SmacheConfig.paper_example(mode=StreamBufferMode.HYBRID)
        est_r = cfg_r.cost_estimate()
        est_h = cfg_h.cost_estimate()
        assert est_h.r_total_bits < est_r.r_total_bits
        assert est_h.b_total_bits > est_r.b_total_bits

    def test_total_memory_independent_of_mode(self):
        # The split changes, the total number of buffered bits does not.
        cfg_r = SmacheConfig.paper_example(mode=StreamBufferMode.REGISTER_ONLY)
        cfg_h = SmacheConfig.paper_example(mode=StreamBufferMode.HYBRID)
        assert cfg_r.cost_estimate().total_bits == cfg_h.cost_estimate().total_bits


class TestCompareEstimates:
    def test_identical_estimates_have_zero_error(self, paper_config):
        est = paper_config.cost_estimate()
        errors = compare_estimates(est, est)
        assert all(v == 0.0 for v in errors.values())

    def test_zero_actual_nonzero_estimate_is_inf(self, paper_config):
        from repro.core.cost_model import MemoryCostEstimate

        est = MemoryCostEstimate(10, 0, 0, 0)
        act = MemoryCostEstimate(0, 0, 0, 0)
        errors = compare_estimates(est, act)
        assert errors["Rsc"] == float("inf")
        assert errors["Bsc"] == 0.0

    def test_error_magnitude(self):
        from repro.core.cost_model import MemoryCostEstimate

        est = MemoryCostEstimate(0, 100, 0, 0)
        act = MemoryCostEstimate(0, 110, 0, 0)
        errors = compare_estimates(est, act)
        assert errors["Bsc"] == pytest.approx(10 / 110)


class TestScaling:
    @pytest.mark.parametrize("cols", [16, 64, 256])
    def test_hybrid_registers_independent_of_grid_width(self, cols):
        config = SmacheConfig.paper_example(16, cols, mode=StreamBufferMode.HYBRID)
        est = config.cost_estimate()
        assert est.r_stream_bits == 352  # 11 elements regardless of width

    @pytest.mark.parametrize("cols", [16, 64, 256])
    def test_register_only_scales_with_width(self, cols):
        config = SmacheConfig.paper_example(16, cols, mode=StreamBufferMode.REGISTER_ONLY)
        est = config.cost_estimate()
        assert est.r_stream_bits == (2 * cols + 3) * 32

    @pytest.mark.parametrize("rows,cols", [(11, 11), (32, 64), (128, 128)])
    def test_static_bits_are_two_rows_double_buffered(self, rows, cols):
        config = SmacheConfig.paper_example(rows, cols)
        est = config.cost_estimate()
        assert est.b_static_bits == 2 * cols * 32 * 2

    def test_wider_words_scale_everything(self):
        config = SmacheConfig.paper_example(word_bits=64)
        est = config.cost_estimate()
        base = SmacheConfig.paper_example().cost_estimate()
        # word_bits override only affects the plan when the grid word size is
        # used; here the grid stays 4-byte so the plan uses 32-bit words, and
        # the explicit override is exposed through effective_word_bits.
        assert config.effective_word_bits == 64
        assert base.total_bits > 0
