"""Tests for repro.core.grid: GridSpec and IterationPattern."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid import GridSpec, IterationPattern


class TestGridSpecBasics:
    def test_size_2d(self):
        assert GridSpec(shape=(11, 11)).size == 121

    def test_size_3d(self):
        assert GridSpec(shape=(4, 5, 6)).size == 120

    def test_ndim(self):
        assert GridSpec(shape=(3, 4)).ndim == 2
        assert GridSpec(shape=(3, 4, 5)).ndim == 3

    def test_word_bits_default(self):
        assert GridSpec(shape=(2, 2)).word_bits == 32

    def test_word_bits_custom(self):
        assert GridSpec(shape=(2, 2), word_bytes=8).word_bits == 64

    def test_total_bytes(self):
        assert GridSpec(shape=(11, 11), word_bytes=4).total_bytes == 484

    def test_strides_2d(self):
        assert GridSpec(shape=(11, 13)).strides == (13, 1)

    def test_strides_3d(self):
        assert GridSpec(shape=(3, 4, 5)).strides == (20, 5, 1)

    def test_describe_mentions_dims(self):
        assert "11x13" in GridSpec(shape=(11, 13)).describe()

    def test_shape_normalised_to_ints(self):
        grid = GridSpec(shape=(np.int64(3), np.int64(4)))
        assert grid.shape == (3, 4)
        assert all(isinstance(s, int) for s in grid.shape)


class TestGridSpecValidation:
    def test_rejects_zero_extent(self):
        with pytest.raises(ValueError):
            GridSpec(shape=(0, 4))

    def test_rejects_negative_extent(self):
        with pytest.raises(ValueError):
            GridSpec(shape=(4, -1))

    def test_rejects_empty_shape(self):
        with pytest.raises(ValueError):
            GridSpec(shape=())

    def test_rejects_too_many_dims(self):
        with pytest.raises(ValueError):
            GridSpec(shape=(2, 2, 2, 2, 2))

    def test_rejects_non_positive_word_bytes(self):
        with pytest.raises(ValueError):
            GridSpec(shape=(2, 2), word_bytes=0)


class TestLinearisation:
    def test_linear_index_origin(self):
        assert GridSpec(shape=(11, 11)).linear_index((0, 0)) == 0

    def test_linear_index_row_major(self):
        grid = GridSpec(shape=(11, 11))
        assert grid.linear_index((1, 0)) == 11
        assert grid.linear_index((0, 1)) == 1
        assert grid.linear_index((10, 10)) == 120

    def test_coord_roundtrip_exhaustive_small(self):
        grid = GridSpec(shape=(5, 7))
        for linear in range(grid.size):
            assert grid.linear_index(grid.coord(linear)) == linear

    def test_linear_index_out_of_range_raises(self):
        grid = GridSpec(shape=(4, 4))
        with pytest.raises(IndexError):
            grid.linear_index((4, 0))
        with pytest.raises(IndexError):
            grid.linear_index((0, -1))

    def test_linear_index_wrong_arity_raises(self):
        with pytest.raises(ValueError):
            GridSpec(shape=(4, 4)).linear_index((1, 2, 3))

    def test_coord_out_of_range_raises(self):
        with pytest.raises(IndexError):
            GridSpec(shape=(4, 4)).coord(16)

    def test_contains(self):
        grid = GridSpec(shape=(4, 6))
        assert grid.contains((3, 5))
        assert not grid.contains((4, 0))
        assert not grid.contains((0, 6))
        assert not grid.contains((-1, 0))
        assert not grid.contains((1, 2, 3))

    def test_linear_offset_matches_numpy(self):
        grid = GridSpec(shape=(7, 9))
        assert grid.linear_offset((1, 0)) == 9
        assert grid.linear_offset((-1, 2)) == -7
        assert grid.linear_offset((0, -1)) == -1

    def test_coords_iterates_in_stream_order(self):
        grid = GridSpec(shape=(3, 3))
        coords = list(grid.coords())
        assert coords[0] == (0, 0)
        assert coords[4] == (1, 1)
        assert coords[-1] == (2, 2)
        assert len(coords) == 9

    def test_empty_array_shape_and_dtype(self):
        grid = GridSpec(shape=(3, 4))
        arr = grid.empty_array()
        assert arr.shape == (3, 4)
        assert arr.dtype == np.float64
        assert np.all(arr == 0)

    @given(
        rows=st.integers(min_value=1, max_value=12),
        cols=st.integers(min_value=1, max_value=12),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_linearisation_matches_numpy_ravel(self, rows, cols, data):
        grid = GridSpec(shape=(rows, cols))
        r = data.draw(st.integers(min_value=0, max_value=rows - 1))
        c = data.draw(st.integers(min_value=0, max_value=cols - 1))
        expected = np.ravel_multi_index((r, c), (rows, cols))
        assert grid.linear_index((r, c)) == expected


class TestIterationPattern:
    def test_contiguous_visits_everything_in_order(self):
        grid = GridSpec(shape=(4, 5))
        pattern = IterationPattern.contiguous(grid)
        assert list(pattern.indices()) == list(range(20))
        assert len(pattern) == 20
        assert pattern.is_contiguous()

    def test_strided_visits_everything_once(self):
        grid = GridSpec(shape=(4, 5))
        pattern = IterationPattern.strided(grid, 3)
        visited = list(pattern.indices())
        assert sorted(visited) == list(range(20))
        assert visited[0] == 0
        assert visited[1] == 3
        assert not pattern.is_contiguous()

    def test_strided_with_stride_one_is_contiguous(self):
        grid = GridSpec(shape=(2, 5))
        assert IterationPattern.strided(grid, 1).is_contiguous()

    def test_explicit_pattern(self):
        grid = GridSpec(shape=(2, 3))
        pattern = IterationPattern.from_indices(grid, [5, 0, 3])
        assert list(pattern.indices()) == [5, 0, 3]
        assert len(pattern) == 3
        assert not pattern.is_contiguous()

    def test_explicit_identity_is_contiguous(self):
        grid = GridSpec(shape=(2, 2))
        assert IterationPattern.from_indices(grid, [0, 1, 2, 3]).is_contiguous()

    def test_explicit_rejects_out_of_range(self):
        grid = GridSpec(shape=(2, 2))
        with pytest.raises(ValueError):
            IterationPattern.from_indices(grid, [0, 4])

    def test_strided_rejects_non_positive_stride(self):
        grid = GridSpec(shape=(2, 2))
        with pytest.raises(ValueError):
            IterationPattern.strided(grid, 0)

    def test_unknown_kind_rejected(self):
        grid = GridSpec(shape=(2, 2))
        with pytest.raises(ValueError):
            IterationPattern(grid=grid, kind="zigzag")
