"""Tests for repro.core.partition: hybrid register/BRAM splits."""

import pytest

from repro.core.buffers import StreamBufferSpec
from repro.core.partition import (
    StreamBufferMode,
    hybrid_register_slots,
    partition_for_plan,
    partition_stream_buffer,
    sweep_partitions,
)


@pytest.fixture
def stream_25():
    return StreamBufferSpec(reach=22, window_lo=-11, window_hi=11, word_bits=32)


class TestHybridFormula:
    def test_register_slots_for_four_taps(self):
        assert hybrid_register_slots(4) == 11

    def test_register_slots_for_zero_taps(self):
        assert hybrid_register_slots(0) == 3

    def test_negative_taps_rejected(self):
        with pytest.raises(ValueError):
            hybrid_register_slots(-1)


class TestPartition:
    def test_register_only_uses_whole_depth(self, stream_25):
        p = partition_stream_buffer(stream_25, 4, StreamBufferMode.REGISTER_ONLY)
        assert p.register_elements == 25
        assert p.bram_elements == 0
        assert p.bram_segments == 0
        assert p.register_bits == 800

    def test_hybrid_keeps_taps_in_registers(self, stream_25):
        p = partition_stream_buffer(stream_25, 4, StreamBufferMode.HYBRID)
        assert p.register_elements == 11
        assert p.bram_elements == 14
        assert p.register_bits == 352
        assert p.bram_bits == 448

    def test_hybrid_capped_by_depth(self):
        small = StreamBufferSpec(reach=2, window_lo=-1, window_hi=1, word_bits=32)
        p = partition_stream_buffer(small, 4, StreamBufferMode.HYBRID)
        assert p.register_elements == small.depth
        assert p.bram_elements == 0

    def test_custom_partition(self, stream_25):
        p = partition_stream_buffer(
            stream_25, 4, StreamBufferMode.CUSTOM, register_elements=20
        )
        assert p.register_elements == 20
        assert p.bram_elements == 5

    def test_custom_requires_register_elements(self, stream_25):
        with pytest.raises(ValueError):
            partition_stream_buffer(stream_25, 4, StreamBufferMode.CUSTOM)

    def test_custom_out_of_range_rejected(self, stream_25):
        with pytest.raises(ValueError):
            partition_stream_buffer(
                stream_25, 4, StreamBufferMode.CUSTOM, register_elements=26
            )

    def test_max_concurrent_bram_reads_is_at_most_one(self, stream_25):
        p = partition_stream_buffer(stream_25, 4, StreamBufferMode.HYBRID)
        assert p.max_concurrent_bram_reads == 1
        r = partition_stream_buffer(stream_25, 4, StreamBufferMode.REGISTER_ONLY)
        assert r.max_concurrent_bram_reads == 0

    def test_describe_mentions_mode(self, stream_25):
        assert "h:" in partition_stream_buffer(stream_25, 4).describe()


class TestPartitionForPlan:
    def test_paper_plan_hybrid(self, paper_config):
        plan = paper_config.plan()
        p = partition_for_plan(plan, StreamBufferMode.HYBRID)
        assert p.register_elements == 11
        assert p.register_bits == 352

    def test_paper_plan_register_only(self, paper_config):
        plan = paper_config.plan()
        p = partition_for_plan(plan, StreamBufferMode.REGISTER_ONLY)
        assert p.register_bits == 800

    def test_1024_hybrid_register_section_constant(self):
        from repro.core.config import SmacheConfig

        plan = SmacheConfig.paper_example(1024, 1024).plan()
        p = partition_for_plan(plan, StreamBufferMode.HYBRID)
        assert p.register_elements == 11
        assert p.bram_elements == 2040


class TestSweep:
    def test_sweep_includes_both_extremes(self, stream_25):
        points = sweep_partitions(stream_25, 4, steps=5)
        regs = [p.register_elements for p in points]
        assert min(regs) == 11
        assert max(regs) == 25

    def test_sweep_is_monotone_and_consistent(self, stream_25):
        points = sweep_partitions(stream_25, 4, steps=6)
        regs = [p.register_elements for p in points]
        assert regs == sorted(regs)
        for p in points:
            assert p.register_elements + p.bram_elements == stream_25.depth
