"""Tests for repro.core.planner: Algorithm 1 and the global window planner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boundary import BoundaryKind, BoundarySpec
from repro.core.buffers import PIPELINE_SLACK
from repro.core.grid import GridSpec
from repro.core.planner import (
    evaluate_window,
    optimal_split_for_range,
    paper_algorithm1,
    plan_buffers,
    _merge_runs,
)
from repro.core.ranges import partition_into_ranges
from repro.core.stencil import StencilShape


class TestMergeRuns:
    def test_disjoint_runs_stay_separate(self):
        assert _merge_runs([(0, 5), (10, 15)]) == [(0, 5), (10, 15)]

    def test_overlapping_runs_merge(self):
        assert _merge_runs([(0, 6), (4, 10)]) == [(0, 10)]

    def test_adjacent_runs_merge(self):
        assert _merge_runs([(0, 5), (5, 9)]) == [(0, 9)]

    def test_unsorted_input(self):
        assert _merge_runs([(10, 12), (0, 3), (2, 5)]) == [(0, 5), (10, 12)]

    def test_empty(self):
        assert _merge_runs([]) == []


class TestPaperCasePlan:
    def test_window_is_interior_reach(self, paper_config):
        plan = paper_config.plan()
        assert plan.stream.reach == 22
        assert plan.stream.window_lo == -11
        assert plan.stream.window_hi == 11
        assert plan.stream.depth == 22 + PIPELINE_SLACK

    def test_two_static_buffers_top_and_bottom_rows(self, paper_config):
        plan = paper_config.plan()
        assert plan.n_static_buffers == 2
        regions = sorted((s.start, s.end) for s in plan.statics)
        assert regions == [(0, 11), (110, 121)]

    def test_static_buffers_are_double_buffered(self, paper_config):
        plan = paper_config.plan()
        assert all(s.double_buffered for s in plan.statics)
        assert all(s.banks == 2 for s in plan.statics)

    def test_total_cost_elements(self, paper_config):
        assert paper_config.plan().total_cost_elements == 22 + 22

    def test_plan_bits(self, paper_config):
        plan = paper_config.plan()
        assert plan.stream_bits == 25 * 32
        assert plan.static_bits == 2 * 11 * 32 * 2
        assert plan.total_bits == plan.stream_bits + plan.static_bits

    def test_static_buffers_named_after_rows(self, paper_config):
        names = sorted(s.name for s in paper_config.plan().statics)
        assert names == ["row0", "row10"]

    def test_static_for_lookup(self, paper_config):
        plan = paper_config.plan()
        assert plan.static_for(0) is not None
        assert plan.static_for(115) is not None
        assert plan.static_for(60) is None

    def test_lookup_offsets_are_kept_window_offsets(self, paper_config):
        plan = paper_config.plan()
        assert set(plan.lookup_offsets()) == {-11, -1, 1, 11}

    def test_describe_mentions_buffers(self, paper_config):
        text = paper_config.plan().describe()
        assert "static bufs : 2" in text
        assert "reach 22" in text

    def test_1024_plan_matches_formulas(self):
        from repro.core.config import SmacheConfig

        plan = SmacheConfig.paper_example(1024, 1024).plan()
        assert plan.stream.reach == 2048
        assert plan.stream.depth == 2051
        assert plan.static_elements == 2048


class TestPlanCorrectness:
    """Every access must be served by the window or by a static buffer."""

    @pytest.mark.parametrize(
        "shape,stencil,boundary",
        [
            ((11, 11), StencilShape.four_point_2d(), BoundarySpec.paper_2d()),
            ((9, 7), StencilShape.five_point_2d(), BoundarySpec.all_circular(2)),
            ((8, 8), StencilShape.star_2d(2), BoundarySpec.all_open(2)),
            ((10, 6), StencilShape.asymmetric_2d(), BoundarySpec.paper_2d()),
            (
                (12, 5),
                StencilShape.moore(2, 1),
                BoundarySpec.per_dimension([BoundaryKind.MIRROR, BoundaryKind.CIRCULAR]),
            ),
        ],
    )
    def test_every_access_covered(self, shape, stencil, boundary):
        grid = GridSpec(shape=shape)
        plan = plan_buffers(grid, stencil, boundary)
        ranges = partition_into_ranges(grid, stencil, boundary)
        for r in ranges:
            for pos in range(r.start, r.end):
                for offset in r.stream_offsets:
                    target = pos + offset
                    in_window = plan.stream.window_lo <= offset <= plan.stream.window_hi
                    in_static = plan.static_for(target) is not None
                    assert in_window or in_static, (
                        f"access {target} (offset {offset}) of position {pos} is not covered"
                    )

    def test_no_static_buffers_for_small_open_problem(self):
        grid = GridSpec(shape=(9, 9))
        plan = plan_buffers(grid, StencilShape.five_point_2d(), BoundarySpec.all_open(2))
        assert plan.n_static_buffers == 0
        assert plan.stream.reach == 18

    def test_range_plans_reported_for_every_range(self, paper_config):
        plan = paper_config.plan()
        ranges = partition_into_ranges(
            paper_config.grid, paper_config.stencil, paper_config.boundary
        )
        assert len(plan.range_plans) == len(ranges)
        assert sum(rp.range_length for rp in plan.range_plans) == paper_config.grid.size


class TestPlannerOptimality:
    def test_planner_never_worse_than_algorithm1(self, paper_config):
        ranges = partition_into_ranges(
            paper_config.grid, paper_config.stencil, paper_config.boundary
        )
        plan = paper_config.plan()
        algo1 = paper_algorithm1(ranges)
        assert plan.total_cost_elements <= algo1.total_elements

    def test_planner_never_worse_than_stream_only(self, paper_config):
        # "Stream-only" = a single window wide enough to serve every offset of
        # every range without any static buffer (the full circular span).
        ranges = partition_into_ranges(
            paper_config.grid, paper_config.stencil, paper_config.boundary
        )
        offsets = [o for r in ranges for o in r.stream_offsets]
        stream_only = max(offsets) - min(offsets)
        assert stream_only == 220
        assert paper_config.plan().total_cost_elements <= stream_only

    def test_planner_matches_brute_force_on_candidate_windows(self, small_config):
        ranges = partition_into_ranges(
            small_config.grid, small_config.stencil, small_config.boundary
        )
        offsets = set()
        for r in ranges:
            offsets.update(r.stream_offsets)
        los = sorted({o for o in offsets if o < 0} | {0})
        his = sorted({o for o in offsets if o > 0} | {0})
        best = min(
            evaluate_window(ranges, lo, hi).total_elements for lo in los for hi in his
        )
        assert small_config.plan().total_cost_elements == best

    @given(rows=st.integers(4, 12), cols=st.integers(4, 12))
    @settings(max_examples=20, deadline=None)
    def test_planner_cost_upper_bounds(self, rows, cols):
        grid = GridSpec(shape=(rows, cols))
        stencil = StencilShape.four_point_2d()
        boundary = BoundarySpec.paper_2d()
        ranges = partition_into_ranges(grid, stencil, boundary)
        plan = plan_buffers(grid, stencil, boundary)
        # The full-span window (serving every offset, no statics) is always a
        # candidate, so the planner can never do worse than it.
        offsets = [o for r in ranges for o in r.stream_offsets]
        stream_only = max(offsets) - min(offsets)
        assert plan.total_cost_elements <= stream_only


class TestPlannerConstraints:
    def test_max_stream_reach_is_respected(self, paper_config):
        plan = plan_buffers(
            paper_config.grid,
            paper_config.stencil,
            paper_config.boundary,
            max_stream_reach=12,
        )
        assert plan.stream.reach <= 12
        # offloading +-11 to static buffers forces more static storage
        assert plan.static_elements > 22

    def test_unsatisfiable_reach_constraint_raises(self, paper_config):
        with pytest.raises(ValueError):
            plan_buffers(
                paper_config.grid,
                paper_config.stencil,
                paper_config.boundary,
                max_stream_reach=-1,
            )

    def test_max_total_bits_prefers_smaller_plan(self, paper_config):
        unconstrained = plan_buffers(
            paper_config.grid, paper_config.stencil, paper_config.boundary
        )
        constrained = plan_buffers(
            paper_config.grid,
            paper_config.stencil,
            paper_config.boundary,
            max_total_bits=unconstrained.total_bits,
        )
        assert constrained.total_bits <= unconstrained.total_bits

    def test_zero_reach_window_offloads_every_offset(self, paper_config):
        plan = plan_buffers(
            paper_config.grid,
            paper_config.stencil,
            paper_config.boundary,
            max_stream_reach=0,
        )
        assert plan.stream.reach == 0
        assert plan.stream.window_lo == 0 and plan.stream.window_hi == 0
        # with no window to serve neighbours, every non-centre offset is static
        for rp in plan.range_plans:
            assert set(rp.kept_offsets) <= {0}
        assert plan.static_elements >= paper_config.grid.size

    def test_max_total_bits_infeasible_falls_back_to_smallest_footprint(self, paper_config):
        unconstrained = plan_buffers(
            paper_config.grid, paper_config.stencil, paper_config.boundary
        )
        # a one-bit budget admits no candidate; the planner falls back to the
        # smallest-footprint plan and the caller checks total_bits
        fallback = plan_buffers(
            paper_config.grid,
            paper_config.stencil,
            paper_config.boundary,
            max_total_bits=1,
        )
        assert fallback.total_bits > 1
        assert fallback.total_cost_elements == unconstrained.total_cost_elements
        assert fallback.stream.reach == unconstrained.stream.reach

    def test_single_buffering_halves_static_bits(self, paper_config):
        double = plan_buffers(paper_config.grid, paper_config.stencil, paper_config.boundary)
        single = plan_buffers(
            paper_config.grid,
            paper_config.stencil,
            paper_config.boundary,
            double_buffer_statics=False,
        )
        assert single.static_bits * 2 == double.static_bits

    def test_word_bits_override(self, paper_config):
        plan = plan_buffers(
            paper_config.grid, paper_config.stencil, paper_config.boundary, word_bits=64
        )
        assert plan.stream.word_bits == 64
        assert plan.stream_bits == plan.stream.depth * 64


class TestPerRangeSplit:
    def test_interior_range_split_is_locally_optimal(self, paper_config):
        # Viewed in isolation (the per-range view of Section II), the interior
        # range prefers to offload the +-11 row offsets: 2 (reach) + 2*9
        # (static) = 20 beats keeping everything in a reach-22 window.  The
        # global planner overrides this because the per-row static buffers
        # would not merge, but the per-range optimum itself must hold.
        ranges = partition_into_ranges(
            paper_config.grid, paper_config.stencil, paper_config.boundary
        )
        interior = next(r for r in ranges if r.start == 56)  # row 5, columns 1..9
        kept, offloaded, reach, static = optimal_split_for_range(interior)
        assert set(kept) == {-1, 1}
        assert set(offloaded) == {-11, 11}
        assert reach + static == 20
        assert reach + static <= interior.reach

    def test_corner_range_offloads_the_wrap(self, paper_config):
        ranges = partition_into_ranges(
            paper_config.grid, paper_config.stencil, paper_config.boundary
        )
        corner = [r for r in ranges if r.start == 0][0]
        kept, offloaded, reach, static = optimal_split_for_range(corner)
        assert 110 in offloaded
        assert static == corner.length * len(offloaded)

    def test_split_respects_reach_constraint(self, paper_config):
        ranges = partition_into_ranges(
            paper_config.grid, paper_config.stencil, paper_config.boundary
        )
        interior = max(ranges, key=lambda r: r.length)
        kept, offloaded, reach, static = optimal_split_for_range(interior, max_stream_reach=4)
        assert reach <= 4
        assert len(offloaded) >= 2

    def test_algorithm1_reports_per_range_results(self, paper_config):
        ranges = partition_into_ranges(
            paper_config.grid, paper_config.stencil, paper_config.boundary
        )
        result = paper_algorithm1(ranges)
        assert len(result.per_range_stream) == len(ranges)
        assert len(result.per_range_static) == len(ranges)
        assert result.total_elements == max(result.per_range_stream) + sum(
            result.per_range_static
        )
