"""Tests for repro.core.ranges: range partitioning and case classification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boundary import BoundaryKind, BoundarySpec
from repro.core.grid import GridSpec, IterationPattern
from repro.core.ranges import (
    classify_cases,
    n_cases,
    partition_into_ranges,
    _banded_partition,
    _enumerating_partition,
)
from repro.core.stencil import StencilShape


class TestPaperCase:
    def test_nine_cases(self, grid_11x11, four_point, paper_boundary):
        assert n_cases(grid_11x11, four_point, paper_boundary) == 9

    def test_ranges_cover_stream_exactly(self, grid_11x11, four_point, paper_boundary):
        ranges = partition_into_ranges(grid_11x11, four_point, paper_boundary)
        covered = sorted((r.start, r.end) for r in ranges)
        position = 0
        for start, end in covered:
            assert start == position
            position = end
        assert position == 121

    def test_ranges_per_row(self, grid_11x11, four_point, paper_boundary):
        # every row splits into left edge / interior / right edge
        ranges = partition_into_ranges(grid_11x11, four_point, paper_boundary)
        assert len(ranges) == 33

    def test_interior_case_dominates(self, grid_11x11, four_point, paper_boundary):
        ranges = partition_into_ranges(grid_11x11, four_point, paper_boundary)
        cases = classify_cases(ranges)
        assert max(c.n_positions for c in cases.values()) == 81

    def test_case_info_consistency(self, grid_11x11, four_point, paper_boundary):
        ranges = partition_into_ranges(grid_11x11, four_point, paper_boundary)
        cases = classify_cases(ranges)
        assert sum(c.n_positions for c in cases.values()) == 121
        assert sum(c.n_ranges for c in cases.values()) == len(ranges)

    def test_range_properties(self, grid_11x11, four_point, paper_boundary):
        ranges = partition_into_ranges(grid_11x11, four_point, paper_boundary)
        interior = [r for r in ranges if r.start == 56][0]
        assert interior.reach == 22
        assert interior.n_points == 4
        assert interior.end == interior.start + interior.length


class TestBandedVsEnumerating:
    @pytest.mark.parametrize(
        "shape,boundary",
        [
            ((7, 9), BoundarySpec.paper_2d()),
            ((6, 6), BoundarySpec.all_circular(2)),
            ((5, 8), BoundarySpec.all_open(2)),
            ((8, 5), BoundarySpec.per_dimension([BoundaryKind.MIRROR, BoundaryKind.CLAMP])),
        ],
    )
    def test_both_partitioners_agree(self, shape, boundary):
        grid = GridSpec(shape=shape)
        stencil = StencilShape.four_point_2d()
        banded = _banded_partition(grid, stencil, boundary)
        enumerated = _enumerating_partition(
            grid, stencil, boundary, IterationPattern.contiguous(grid)
        )
        assert [(r.start, r.length) for r in banded] == [
            (r.start, r.length) for r in enumerated
        ]
        assert [r.stream_offsets for r in banded] == [r.stream_offsets for r in enumerated]

    @given(
        rows=st.integers(3, 9),
        cols=st.integers(3, 9),
        periodic_rows=st.booleans(),
        periodic_cols=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_partition_covers_stream_for_any_boundary_mix(
        self, rows, cols, periodic_rows, periodic_cols
    ):
        grid = GridSpec(shape=(rows, cols))
        boundary = BoundarySpec.per_dimension(
            [
                BoundaryKind.CIRCULAR if periodic_rows else BoundaryKind.OPEN,
                BoundaryKind.CIRCULAR if periodic_cols else BoundaryKind.OPEN,
            ]
        )
        ranges = partition_into_ranges(grid, StencilShape.five_point_2d(), boundary)
        assert sum(r.length for r in ranges) == grid.size
        position = 0
        for r in ranges:
            assert r.start == position
            position += r.length


class TestDegenerateAndNonContiguous:
    def test_grid_smaller_than_stencil_radius(self):
        grid = GridSpec(shape=(2, 2))
        ranges = partition_into_ranges(
            grid, StencilShape.star_2d(radius=2), BoundarySpec.all_circular(2)
        )
        assert sum(r.length for r in ranges) == 4

    def test_1d_grid(self):
        grid = GridSpec(shape=(16,))
        stencil = StencilShape.from_offsets([(-1,), (1,)])
        ranges = partition_into_ranges(grid, stencil, BoundarySpec.all_circular(1))
        assert sum(r.length for r in ranges) == 16
        assert len(classify_cases(ranges)) == 3

    def test_non_contiguous_pattern_uses_enumerator(self, grid_11x11, four_point, paper_boundary):
        pattern = IterationPattern.strided(grid_11x11, 2)
        ranges = partition_into_ranges(grid_11x11, four_point, paper_boundary, pattern)
        assert sum(r.length for r in ranges) == 121

    def test_enumerator_guard_on_huge_patterns(self, four_point, paper_boundary):
        grid = GridSpec(shape=(64, 64))
        pattern = IterationPattern.strided(grid, 2)
        with pytest.raises(ValueError):
            _enumerating_partition(grid, four_point, paper_boundary, pattern, max_positions=100)

    def test_1024_grid_partitions_quickly(self):
        grid = GridSpec(shape=(1024, 1024))
        ranges = partition_into_ranges(
            grid, StencilShape.four_point_2d(), BoundarySpec.paper_2d()
        )
        assert sum(r.length for r in ranges) == 1024 * 1024
        assert len(classify_cases(ranges)) == 9
