"""Tests for repro.core.stencil: StencilShape."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stencil import StencilShape


class TestConstruction:
    def test_four_point_has_four_offsets_no_centre(self):
        s = StencilShape.four_point_2d()
        assert s.n_points == 4
        assert not s.includes_centre

    def test_five_point_includes_centre(self):
        s = StencilShape.five_point_2d()
        assert s.n_points == 5
        assert s.includes_centre

    def test_duplicate_offsets_rejected(self):
        with pytest.raises(ValueError):
            StencilShape(offsets=((0, 1), (0, 1)))

    def test_empty_offsets_rejected(self):
        with pytest.raises(ValueError):
            StencilShape(offsets=())

    def test_mixed_arity_rejected(self):
        with pytest.raises(ValueError):
            StencilShape(offsets=((0, 1), (1, 2, 3)))

    def test_from_offsets_accepts_lists(self):
        s = StencilShape.from_offsets([[0, 0], [1, 1]], name="diag")
        assert s.offsets == ((0, 0), (1, 1))
        assert s.name == "diag"

    def test_with_centre_adds_centre_once(self):
        s = StencilShape.four_point_2d().with_centre()
        assert s.includes_centre
        assert s.n_points == 5
        assert s.with_centre().n_points == 5

    def test_str_mentions_name_and_points(self):
        text = str(StencilShape.four_point_2d())
        assert "4-point" in text and "4 points" in text


class TestGeometry:
    def test_extent_symmetric(self):
        s = StencilShape.four_point_2d()
        assert s.extent(0) == (-1, 1)
        assert s.extent(1) == (-1, 1)

    def test_extent_asymmetric(self):
        s = StencilShape.asymmetric_2d()
        assert s.extent(0) == (-1, 3)
        assert s.extent(1) == (-1, 2)

    def test_radius(self):
        s = StencilShape.asymmetric_2d()
        assert s.radius(0) == 3
        assert s.radius(1) == 2

    def test_linear_offsets_row_major(self):
        s = StencilShape.four_point_2d()
        assert set(s.linear_offsets((11, 1))) == {-11, 11, -1, 1}

    def test_linear_offsets_wrong_arity(self):
        with pytest.raises(ValueError):
            StencilShape.four_point_2d().linear_offsets((11,))

    def test_interior_reach_four_point(self):
        assert StencilShape.four_point_2d().interior_reach((11, 1)) == 22
        assert StencilShape.four_point_2d().interior_reach((1024, 1)) == 2048

    def test_ndim(self):
        assert StencilShape.four_point_2d().ndim == 2
        assert StencilShape.von_neumann(3).ndim == 3


class TestFactories:
    def test_von_neumann_radius_1_2d(self):
        s = StencilShape.von_neumann(2, radius=1)
        assert s.n_points == 5  # centre + 4 neighbours

    def test_von_neumann_excluding_centre(self):
        s = StencilShape.von_neumann(2, radius=1, include_centre=False)
        assert s.n_points == 4
        assert not s.includes_centre

    def test_von_neumann_radius_2_2d(self):
        s = StencilShape.von_neumann(2, radius=2)
        assert s.n_points == 13

    def test_von_neumann_3d(self):
        s = StencilShape.von_neumann(3, radius=1)
        assert s.n_points == 7

    def test_moore_radius_1(self):
        assert StencilShape.moore(2, radius=1).n_points == 9
        assert StencilShape.moore(2, radius=1, include_centre=False).n_points == 8

    def test_moore_3d(self):
        assert StencilShape.moore(3, radius=1).n_points == 27

    def test_star_radius_2(self):
        s = StencilShape.star_2d(radius=2)
        assert s.n_points == 9
        assert s.radius(0) == 2

    def test_star_rejects_zero_radius(self):
        with pytest.raises(ValueError):
            StencilShape.star_2d(radius=0)

    @given(radius=st.integers(min_value=1, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_von_neumann_point_count_formula(self, radius):
        # |{x : |x1|+|x2| <= r}| = 2r^2 + 2r + 1 in 2D
        s = StencilShape.von_neumann(2, radius=radius)
        assert s.n_points == 2 * radius * radius + 2 * radius + 1

    @given(radius=st.integers(min_value=1, max_value=3))
    @settings(max_examples=6, deadline=None)
    def test_moore_point_count_formula(self, radius):
        s = StencilShape.moore(2, radius=radius)
        assert s.n_points == (2 * radius + 1) ** 2

    @given(
        offsets=st.lists(
            st.tuples(st.integers(-5, 5), st.integers(-5, 5)), min_size=1, max_size=8, unique=True
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_reach_is_max_minus_min_of_linear_offsets(self, offsets):
        s = StencilShape.from_offsets(offsets)
        strides = (13, 1)
        linear = [r * 13 + c for r, c in offsets]
        assert s.interior_reach(strides) == max(linear) - min(linear)
