"""Tests for repro.dse: partition sweeps, objectives and selection."""

import pytest

from repro.core.config import SmacheConfig
from repro.dse.explorer import (
    explore_grid_sizes,
    explore_partitions,
    pareto_front,
    select_best,
)
from repro.dse.objectives import (
    maximise_fmax,
    minimise_bram_bits,
    minimise_registers,
    minimise_total_memory_bits,
    weighted_balance,
)
from repro.fpga.device import small_device, stratix_v
from repro.fpga.resources import ResourceUsage


@pytest.fixture(scope="module")
def sweep():
    config = SmacheConfig.paper_example(64, 64)
    return explore_partitions(config, device=stratix_v(), steps=6)


class TestExplorePartitions:
    def test_sweep_spans_hybrid_to_register_only(self, sweep):
        regs = [p.partition.register_elements for p in sweep]
        assert min(regs) == 11
        assert max(regs) == sweep[0].plan.stream.depth

    def test_register_bits_increase_monotonically(self, sweep):
        r = [p.cost.r_stream_bits for p in sweep]
        assert r == sorted(r)

    def test_bram_bits_decrease_monotonically(self, sweep):
        b = [p.cost.b_stream_bits for p in sweep]
        assert b == sorted(b, reverse=True)

    def test_every_point_fits_the_big_device(self, sweep):
        assert all(p.fits for p in sweep)

    def test_labels_are_informative(self, sweep):
        assert "register slots" in sweep[0].label


class TestSelection:
    def test_minimise_registers_picks_hybrid_extreme(self, sweep):
        best = select_best(sweep, minimise_registers)
        assert best.partition.register_elements == 11

    def test_minimise_bram_picks_register_only_extreme(self, sweep):
        best = select_best(sweep, minimise_bram_bits)
        assert best.cost.b_stream_bits == 0

    def test_weighted_balance_interpolates(self, sweep):
        best = select_best(sweep, weighted_balance(register_weight=1.0, bram_weight=1.0))
        assert best is not None

    def test_weighted_balance_validates_weights(self):
        with pytest.raises(ValueError):
            weighted_balance(register_weight=-1)

    def test_total_memory_objective(self, sweep):
        best = select_best(sweep, minimise_total_memory_bits)
        assert best.cost.total_bits == min(p.cost.total_bits for p in sweep)

    def test_maximise_fmax_returns_a_point(self, sweep):
        assert select_best(sweep, maximise_fmax) is not None

    def test_require_fit_filters(self, sweep):
        # a device too small for anything -> None
        tiny = small_device()
        reserved = ResourceUsage(
            alms=tiny.alms - 10, registers=tiny.registers - 10, bram_bits=tiny.bram_bits - 10
        )
        config = SmacheConfig.paper_example(64, 64)
        points = explore_partitions(config, device=tiny, steps=3, reserved=reserved)
        assert select_best(points, minimise_registers) is None
        assert select_best(points, minimise_registers, require_fit=False) is not None


class TestParetoFront:
    def test_front_contains_both_extremes(self, sweep):
        front = pareto_front(sweep)
        regs = [p.partition.register_elements for p in front]
        assert min(regs) == 11
        assert max(regs) == sweep[0].plan.stream.depth

    def test_front_points_are_mutually_non_dominating(self, sweep):
        front = pareto_front(sweep)
        for p in front:
            for q in front:
                if p is q:
                    continue
                assert not (
                    q.cost.r_total_bits < p.cost.r_total_bits
                    and q.cost.b_total_bits < p.cost.b_total_bits
                )


class TestExploreGridSizes:
    def test_prices_every_size(self):
        config = SmacheConfig.paper_example()
        points = explore_grid_sizes(config, sizes=[(11, 11), (64, 64), (256, 256)])
        assert len(points) == 3
        bram = [p.cost.b_total_bits for p in points]
        assert bram == sorted(bram)

    def test_grid_size_reflected_in_config_names(self):
        config = SmacheConfig.paper_example()
        points = explore_grid_sizes(config, sizes=[(32, 32)])
        assert "32x32" in points[0].config.name
