"""Tests for the analytic performance sweep with Pareto-front re-simulation."""

from dataclasses import replace

import pytest

from repro.dse.explorer import (
    PerformancePoint,
    explore_performance,
    performance_pareto_front,
)
from repro.pipeline import StencilProblem


def candidate_problems():
    """A small sweep: the paper's case under different reach constraints."""
    base = StencilProblem.paper_example(11, 11)
    return [
        replace(
            base,
            max_stream_reach=reach,
            name=f"reach-{reach}" if reach is not None else "unconstrained",
        )
        for reach in (0, 4, 11, None)
    ]


@pytest.fixture(scope="module")
def fast_sweep():
    return explore_performance(candidate_problems(), iterations=3)


class TestExplorePerformance:
    def test_every_candidate_is_priced(self, fast_sweep):
        assert len(fast_sweep.points) == 4
        assert all(p.predicted.backend == "analytic" for p in fast_sweep.points)

    def test_only_the_front_is_simulated(self, fast_sweep):
        simulated = [p for p in fast_sweep.points if p.simulated is not None]
        assert simulated == fast_sweep.front
        assert fast_sweep.simulated_count == len(fast_sweep.front)
        assert fast_sweep.simulated_count < len(fast_sweep.points)

    def test_selected_comes_from_the_front(self, fast_sweep):
        assert fast_sweep.selected in fast_sweep.front
        assert fast_sweep.selected.simulated is not None

    def test_analytic_sweep_matches_full_simulation(self, fast_sweep):
        """The acceptance claim: fast path selects the same design as the slow one."""
        full = explore_performance(
            candidate_problems(), iterations=3, backend="simulate", simulate_front=False
        )
        assert full.selected.label == fast_sweep.selected.label
        assert full.selected.cycles == fast_sweep.selected.cycles

    def test_format_lists_candidates_and_choice(self, fast_sweep):
        text = fast_sweep.format()
        assert "unconstrained" in text
        assert "<==" in text

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            explore_performance([])

    def test_timing_free_backend_rejected(self):
        # Regression: the cost backend produces no cycle count; the sweep must
        # say so instead of crashing inside the Pareto comparison.
        with pytest.raises(ValueError, match="no cycle count"):
            explore_performance(candidate_problems(), backend="cost")

    def test_custom_objective(self):
        sweep = explore_performance(
            candidate_problems(),
            iterations=2,
            objective=lambda p: (p.total_bits, p.cycles),
        )
        assert sweep.selected.total_bits == min(p.total_bits for p in sweep.front)


class TestPerformanceParetoFront:
    def test_dominated_points_are_dropped(self, fast_sweep):
        front = performance_pareto_front(fast_sweep.points)
        for p in front:
            assert not any(
                q.predicted_cycles <= p.predicted_cycles
                and q.total_bits <= p.total_bits
                and (q.predicted_cycles < p.predicted_cycles or q.total_bits < p.total_bits)
                for q in fast_sweep.points
            )

    def test_front_is_nonempty(self, fast_sweep):
        assert performance_pareto_front(fast_sweep.points)

    def test_point_properties(self, fast_sweep):
        point: PerformancePoint = fast_sweep.selected
        assert point.cycles == point.simulated.cycles
        assert point.total_bits == point.design.total_memory_bits
        assert point.label == point.design.problem.name
