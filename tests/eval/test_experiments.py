"""Tests for the experiment harness (Figure 2, Table I, E3/E4, ablations).

The full paper-scale Figure 2 run (100 work-instances) is exercised by the
benchmark suite; here smaller instance counts keep the tests fast while still
checking every claim the harness makes about the *shape* of the results.
"""

import pytest

from repro.eval.ablations import (
    run_dram_penalty_ablation,
    run_planner_ablation,
    run_write_through_ablation,
)
from repro.eval.figure2 import FIGURE2_METRICS, run_figure2
from repro.eval.harness import EXPERIMENTS, run_all, run_experiment
from repro.eval.paper_constants import PAPER_FIGURE2, relative_error
from repro.eval.resources_exp import run_hybrid_tradeoff, run_resources
from repro.eval.table1 import TABLE1_COLUMNS, run_table1


@pytest.fixture(scope="module")
def figure2_small():
    return run_figure2(iterations=20)


class TestFigure2:
    def test_smache_beats_baseline_in_cycles(self, figure2_small):
        assert figure2_small.cycle_ratio < 0.3

    def test_traffic_ratio_about_40_percent(self, figure2_small):
        assert 0.35 < figure2_small.traffic_ratio < 0.45

    def test_baseline_synthesises_faster(self, figure2_small):
        assert figure2_small.baseline.freq_mhz > figure2_small.smache.freq_mhz

    def test_smache_still_wins_overall(self, figure2_small):
        assert figure2_small.speedup > 2.0

    def test_normalised_baseline_is_unity(self, figure2_small):
        norm = figure2_small.normalised()
        assert all(v == 1.0 for v in norm["baseline"].values())

    def test_format_contains_both_designs_and_paper(self, figure2_small):
        text = figure2_small.format()
        assert "baseline" in text and "smache" in text and "paper" in text

    def test_mops_consistent_with_time(self, figure2_small):
        row = figure2_small.smache
        assert row.mops == pytest.approx(
            figure2_small.smache_sim.operations / row.exec_time_us
            if figure2_small.smache_sim
            else row.mops,
            rel=1e-6,
        )

    def test_paper_errors_structure(self, figure2_small):
        errors = figure2_small.paper_errors()
        assert set(errors) == {"baseline", "smache"}
        assert set(errors["smache"]) == set(FIGURE2_METRICS)

    def test_paper_scale_run_matches_paper_within_ten_percent(self):
        """The full 100-instance experiment: every Figure 2 metric within 10%."""
        result = run_figure2(iterations=100)
        errors = result.paper_errors()
        for design in ("baseline", "smache"):
            for metric in FIGURE2_METRICS:
                assert errors[design][metric] < 0.10, (
                    f"{design} {metric}: measured "
                    f"{getattr(result, design).as_dict()[metric]:.1f} vs paper "
                    f"{PAPER_FIGURE2[design][metric]}"
                )


class TestTable1:
    @pytest.fixture(scope="class")
    def table1(self):
        return run_table1()

    def test_four_rows(self, table1):
        assert len(table1.rows) == 4

    def test_estimates_match_paper_exactly(self, table1):
        for row in table1.rows:
            assert row.estimate == row.paper_estimate

    def test_actuals_track_estimates(self, table1):
        for row in table1.rows:
            assert row.estimate_vs_actual_error() < 0.20

    def test_actuals_close_to_paper_actuals(self, table1):
        # The paper's Rtotal absorbs miscellaneous registers Quartus attributes
        # to the memory blocks (up to ~1.2K bits on the 1024x1024 hybrid row);
        # our split reports those under the controller instead, so only the
        # data columns are compared here (see EXPERIMENTS.md, E2 notes).
        data_columns = ("Bsc", "Rsm", "Bsm", "Btotal")
        for row in table1.rows:
            for col in data_columns:
                paper = row.paper_actual[col]
                if paper < 500:  # skip tiny columns dominated by tool noise
                    continue
                assert relative_error(row.actual[col], paper) < 0.15

    def test_format_contains_all_rows(self, table1):
        text = table1.format()
        assert "11x11r" in text and "1024x1024h" in text


class TestResourcesAndTradeoff:
    def test_resource_comparison_shape(self):
        comparison = run_resources()
        rows = comparison.rows()
        assert rows["baseline"]["bram_bits"] == 0
        assert rows["smache"]["bram_bits"] > 1000
        assert rows["smache"]["registers"] > rows["baseline"]["registers"]
        assert "E3" in comparison.format()

    def test_resource_errors_within_tolerance(self):
        errors = run_resources().errors()
        assert errors["baseline"]["registers"] < 0.35
        assert errors["smache"]["registers"] < 0.25
        assert errors["smache"]["bram_bits"] < 0.05

    def test_hybrid_tradeoff_matches_paper_shape(self):
        result = run_hybrid_tradeoff()
        # Case-R: tens of thousands of registers; Case-H: ~1.5K registers
        assert result.register_only["registers"] > 60_000
        assert result.hybrid["registers"] < 2_000
        assert result.hybrid["bram_bits"] > result.register_only["bram_bits"]
        assert "Case-R" in result.format()


class TestAblations:
    def test_write_through_saves_cycles_and_traffic(self):
        result = run_write_through_ablation(rows=7, cols=9, iterations=8)
        assert result.cycle_overhead > 0
        assert result.traffic_overhead > 0
        assert "write-through" in result.format()

    def test_dram_penalty_hurts_baseline_more(self):
        result = run_dram_penalty_ablation(penalties=(0, 4), rows=7, cols=9, iterations=4)
        assert result.slowdown("baseline") > 2.0
        assert result.slowdown("smache") < 1.3
        assert "penalty" in result.format()

    def test_planner_ablation_savings_grow_with_grid(self):
        result = run_planner_ablation(grid_sizes=((11, 11), (64, 64), (256, 256)))
        assert result.planner_elements[0] == 44
        assert result.saving(0) < result.saving(-1)
        assert all(
            p <= s for p, s in zip(result.planner_elements, result.stream_only_elements)
        )
        assert "planner" in result.format() or "strategy" in result.format()


class TestHarness:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("does-not-exist")

    def test_run_single_experiment(self):
        record = run_experiment("ablation-planner")
        assert record.name == "ablation-planner"
        assert record.text

    def test_run_all_subset(self):
        report = run_all(["ablation-planner", "hybrid"])
        assert len(report.records) == 2
        assert report.get("hybrid") is not None
        assert report.get("missing") is None
        assert "=" * 10 in report.format()

    def test_registry_and_titles_consistent(self):
        from repro.eval.harness import TITLES

        assert set(EXPERIMENTS) == set(TITLES)
