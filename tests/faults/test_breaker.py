"""CircuitBreaker state machine, driven by a fake clock (no sleeping)."""

import pytest

from repro.faults.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance_ms(self, ms):
        self.now += ms / 1000.0


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(threshold=3, cooldown_ms=100.0, clock=clock)


class TestTripping:
    def test_stays_closed_below_threshold(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()

    def test_trips_on_consecutive_failures(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_streak(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never three in a row

    def test_retry_after_counts_down_the_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.retry_after_ms() == 100
        clock.advance_ms(60)
        assert breaker.retry_after_ms() == 40

    def test_closed_breaker_hints_zero(self, breaker):
        assert breaker.retry_after_ms() == 0


class TestRecovery:
    def _trip(self, breaker):
        for _ in range(3):
            breaker.record_failure()

    def test_half_open_admits_exactly_one_probe(self, breaker, clock):
        self._trip(breaker)
        clock.advance_ms(100)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else still shed

    def test_probe_success_closes(self, breaker, clock):
        self._trip(breaker)
        clock.advance_ms(100)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.allow()

    def test_probe_failure_reopens_for_another_cooldown(self, breaker, clock):
        self._trip(breaker)
        clock.advance_ms(100)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2
        assert not breaker.allow()
        clock.advance_ms(100)
        assert breaker.allow()  # a fresh probe after the new cooldown


class TestSnapshotAndValidation:
    def test_snapshot_shape(self, breaker, clock):
        snap = breaker.snapshot()
        assert snap["state"] == CLOSED and snap["retry_after_ms"] == 0
        for _ in range(3):
            breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == OPEN
        assert snap["trips"] == 1
        assert snap["retry_after_ms"] > 0
        assert snap["threshold"] == 3 and snap["cooldown_ms"] == 100.0

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_ms=0)
