"""Fault specs, plans, backend wrapping, and the injection context manager."""

import os

import pytest

from repro.faults.context import clear_point_context, current_point, set_point_context
from repro.faults.inject import (
    FaultPlan,
    FaultSpec,
    FaultyBackend,
    InjectedFault,
    SimulatedCrash,
    inject_faults,
)
from repro.pipeline.backends import Backend, available_backends, get_backend


@pytest.fixture(autouse=True)
def clean_context():
    clear_point_context()
    yield
    clear_point_context()


class Recorder(Backend):
    """Inner backend stub: counts calls, returns a sentinel."""

    name = "recorder"

    def __init__(self):
        self.calls = 0

    def evaluate(self, design, request):
        self.calls += 1
        return ("evaluated", design, request)


class TestFaultSpec:
    def test_unset_fields_match_everything(self):
        spec = FaultSpec(action="fail")
        assert spec.matches("any-key", "any-label", 1, coin=0.5)

    def test_key_label_and_attempt_combine_with_and(self):
        spec = FaultSpec(action="fail", key="k1", label="smoke-*", attempts_below=2)
        assert spec.matches("k1", "smoke-11x11", 1, 0.0)
        assert not spec.matches("k2", "smoke-11x11", 1, 0.0)  # wrong key
        assert not spec.matches("k1", "bench-11x11", 1, 0.0)  # wrong label
        assert not spec.matches("k1", "smoke-11x11", 2, 0.0)  # retry survives

    def test_probability_uses_the_supplied_coin(self):
        spec = FaultSpec(action="fail", probability=0.3)
        assert spec.matches("k", "l", 1, coin=0.29)
        assert not spec.matches("k", "l", 1, coin=0.31)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(action="explode")
        with pytest.raises(ValueError):
            FaultSpec(action="fail", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(action="hang", seconds=-1.0)


class TestFaultPlan:
    def test_coin_is_deterministic_and_decorrelated(self):
        plan = FaultPlan(seed=3)
        assert plan.coin("k", 1) == FaultPlan(seed=3).coin("k", 1)
        assert plan.coin("k", 1) != plan.coin("k", 2)
        assert plan.coin("k", 1) != FaultPlan(seed=4).coin("k", 1)

    def test_first_matching_spec_wins(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(action="hang", label="smoke-*"),
                FaultSpec(action="fail", label="smoke-*"),
            )
        )
        assert plan.action_for("k", "smoke-x", 1).action == "hang"

    def test_no_point_context_is_never_faulted(self):
        plan = FaultPlan(faults=(FaultSpec(action="fail"),))
        assert plan.action_for(None, None, 1) is None

    def test_from_dicts(self):
        plan = FaultPlan.from_dicts(
            [{"action": "fail", "label": "a-*"}, {"action": "crash", "key": "k"}],
            seed=9,
        )
        assert len(plan.faults) == 2 and plan.seed == 9

    def test_main_pid_is_stamped_at_construction(self):
        assert FaultPlan().main_pid == os.getpid()


class TestFaultyBackend:
    def test_passes_through_without_point_context(self):
        inner = Recorder()
        wrapped = FaultyBackend(inner, FaultPlan(faults=(FaultSpec(action="fail"),)))
        assert wrapped.evaluate("d", "r")[0] == "evaluated"
        assert inner.calls == 1
        assert wrapped.name == "recorder"

    def test_fail_raises_injected_fault_before_the_inner_backend(self):
        inner = Recorder()
        wrapped = FaultyBackend(
            inner, FaultPlan(faults=(FaultSpec(action="fail", label="bad-*"),))
        )
        set_point_context("k", "bad-point", attempt=1)
        with pytest.raises(InjectedFault, match="attempt 1"):
            wrapped.evaluate("d", "r")
        assert inner.calls == 0

    def test_attempts_below_lets_the_retry_succeed(self):
        inner = Recorder()
        wrapped = FaultyBackend(
            inner, FaultPlan(faults=(FaultSpec(action="fail", attempts_below=2),))
        )
        set_point_context("k", "l", attempt=1)
        with pytest.raises(InjectedFault):
            wrapped.evaluate("d", "r")
        set_point_context("k", "l", attempt=2)
        assert wrapped.evaluate("d", "r")[0] == "evaluated"

    def test_hang_delays_then_evaluates(self, monkeypatch):
        naps = []
        monkeypatch.setattr("repro.faults.inject.time.sleep", naps.append)
        inner = Recorder()
        wrapped = FaultyBackend(
            inner, FaultPlan(faults=(FaultSpec(action="hang", seconds=0.7),))
        )
        set_point_context("k", "l", attempt=1)
        assert wrapped.evaluate("d", "r")[0] == "evaluated"
        assert naps == [0.7]

    def test_crash_in_the_main_process_is_simulated(self):
        # main_pid defaults to os.getpid(): in this process a crash fault
        # must degrade to a retryable exception, never os._exit.
        wrapped = FaultyBackend(
            Recorder(), FaultPlan(faults=(FaultSpec(action="crash"),))
        )
        set_point_context("k", "l", attempt=1)
        with pytest.raises(SimulatedCrash):
            wrapped.evaluate("d", "r")

    def test_evaluate_many_gets_one_decision_per_point(self):
        inner = Recorder()
        wrapped = FaultyBackend(
            inner, FaultPlan(faults=(FaultSpec(action="fail", attempts_below=2),))
        )
        set_point_context("k", "l", attempt=2)  # past the fault window
        results = wrapped.evaluate_many([("d1", "r"), ("d2", "r")])
        assert len(results) == 2 and inner.calls == 2


class TestInjectFaults:
    def test_wraps_and_restores_the_registry(self):
        plan = FaultPlan(faults=(FaultSpec(action="fail", label="nope-*"),))
        before = {name: type(get_backend(name)) for name in available_backends()}
        with inject_faults(plan):
            for name in available_backends():
                assert isinstance(get_backend(name), FaultyBackend)
        after = {name: type(get_backend(name)) for name in available_backends()}
        assert after == before

    def test_restores_on_exception(self):
        plan = FaultPlan()
        with pytest.raises(RuntimeError, match="boom"):
            with inject_faults(plan):
                raise RuntimeError("boom")
        assert not isinstance(get_backend("analytic"), FaultyBackend)

    def test_wrapped_analytic_backend_answers_identically(self):
        """No faults firing: the wrapped backend is a byte-exact passthrough."""
        from repro.pipeline import StencilProblem
        from repro.pipeline.backends import evaluate

        problem = StencilProblem.paper_example(11, 11)
        baseline = evaluate(problem, backend="analytic", iterations=2)
        with inject_faults(FaultPlan(faults=(FaultSpec(action="fail", label="zzz-*"),))):
            injected = evaluate(problem, backend="analytic", iterations=2)
        assert injected.cycles == baseline.cycles
        assert injected.dram_bytes == baseline.dram_bytes
        assert injected.operations == baseline.operations
