"""RetryPolicy: classification, deterministic backoff, validation."""

import pickle
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.faults.policy import (
    FatalError,
    RetryPolicy,
    RetryableError,
)


class TestClassification:
    def test_retryable_by_nature(self):
        policy = RetryPolicy()
        assert policy.classify(RetryableError("flaky"))
        assert policy.classify(TimeoutError("slow"))
        assert policy.classify(ConnectionError("gone"))
        assert policy.classify(BrokenProcessPool("pool died"))

    def test_fatal_by_nature(self):
        policy = RetryPolicy()
        assert not policy.classify(FatalError("hopeless"))
        assert not policy.classify(ValueError("bad input"))
        assert not policy.classify(TypeError("bad type"))
        assert not policy.classify(AssertionError("invariant"))
        assert not policy.classify(KeyboardInterrupt())

    def test_unknown_exceptions_follow_retry_unknown(self):
        assert RetryPolicy().classify(RuntimeError("who knows"))
        assert not RetryPolicy(retry_unknown=False).classify(RuntimeError("who knows"))

    def test_fatal_wins_over_retryable_on_overlap(self):
        class FatalFlake(FatalError, RetryableError):
            pass

        assert not RetryPolicy().classify(FatalFlake("still fatal"))

    def test_custom_type_lists(self):
        policy = RetryPolicy(
            retryable_types=(KeyError,), fatal_types=(RuntimeError,), retry_unknown=False
        )
        assert policy.classify(KeyError("transient here"))
        assert not policy.classify(RuntimeError("fatal here"))


class TestBackoff:
    def test_exponential_shape_without_jitter(self):
        policy = RetryPolicy(base_delay_s=0.1, backoff=2.0, max_delay_s=10.0, jitter=0.0)
        assert policy.delay_s("k", 1) == pytest.approx(0.1)
        assert policy.delay_s("k", 2) == pytest.approx(0.2)
        assert policy.delay_s("k", 4) == pytest.approx(0.8)

    def test_cap_applies(self):
        policy = RetryPolicy(base_delay_s=1.0, backoff=10.0, max_delay_s=2.5, jitter=0.0)
        assert policy.delay_s("k", 5) == pytest.approx(2.5)

    def test_jitter_is_deterministic_per_seed_key_attempt(self):
        a = RetryPolicy(seed=7).delay_s("point-1", 2)
        b = RetryPolicy(seed=7).delay_s("point-1", 2)
        assert a == b
        # Different key, attempt or seed decorrelate.
        assert RetryPolicy(seed=7).delay_s("point-2", 2) != a
        assert RetryPolicy(seed=7).delay_s("point-1", 3) != a
        assert RetryPolicy(seed=8).delay_s("point-1", 2) != a

    def test_jitter_stays_within_amplitude(self):
        policy = RetryPolicy(base_delay_s=1.0, backoff=1.0, jitter=0.5)
        for attempt in range(1, 50):
            assert 0.5 <= policy.delay_s("k", attempt) <= 1.5

    def test_attempts_are_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_s("k", 0)


class TestValidationAndPlumbing:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -1.0},
            {"backoff": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
            {"deadline_s": 0.0},
        ],
    )
    def test_rejects_bad_shapes(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_policy_is_picklable_for_pool_workers(self):
        policy = RetryPolicy(max_attempts=5, deadline_s=2.0)
        clone = pickle.loads(pickle.dumps(policy))
        assert clone == policy
        assert clone.classify(RetryableError("x"))

    def test_describe_mentions_the_budget(self):
        text = RetryPolicy(max_attempts=4, deadline_s=1.5).describe()
        assert "x4" in text and "deadline 1.5s" in text
