"""Tests for repro.fpga: resources, devices and the synthesis model."""

import pytest

from repro.core.config import SmacheConfig
from repro.core.partition import StreamBufferMode
from repro.eval.paper_constants import PAPER_RESOURCES, PAPER_TABLE1
from repro.fpga.device import FPGADevice, small_device, stratix_v
from repro.fpga.resources import ResourceUsage
from repro.fpga.synthesis import (
    TimingModel,
    _clog2,
    _next_pow2,
    synthesize_baseline,
    synthesize_smache,
)


class TestResourceUsage:
    def test_addition(self):
        a = ResourceUsage(alms=10, registers=20, bram_bits=30)
        b = ResourceUsage(alms=1, registers=2, bram_bits=3, dsps=4)
        c = a + b
        assert (c.alms, c.registers, c.bram_bits, c.dsps) == (11, 22, 33, 4)

    def test_scaled_and_rounded(self):
        u = ResourceUsage(alms=3.2, registers=5.5)
        assert u.scaled(2).alms == 6.4
        assert u.rounded().alms == 4
        with pytest.raises(ValueError):
            u.scaled(-1)

    def test_exceeds(self):
        small = ResourceUsage(alms=10, registers=10, bram_bits=10)
        big = ResourceUsage(alms=20, registers=20, bram_bits=20)
        assert not small.exceeds(big)
        assert big.exceeds(small)

    def test_total_and_dict_roundtrip(self):
        parts = [ResourceUsage(alms=1), ResourceUsage(registers=2), ResourceUsage(bram_bits=3)]
        total = ResourceUsage.total(parts)
        assert ResourceUsage.from_dict(total.as_dict()) == total

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceUsage(alms=-1)


class TestDevices:
    def test_stratix_v_capacity(self):
        dev = stratix_v()
        assert dev.bram_bits == 2560 * 20480
        assert dev.fits(ResourceUsage(alms=1000, registers=1000, bram_bits=1000))

    def test_small_device_is_smaller(self):
        assert small_device().alms < stratix_v().alms

    def test_fits_and_utilisation(self):
        dev = FPGADevice(name="d", alms=100, registers=400, m20k_blocks=1)
        assert not dev.fits(ResourceUsage(alms=101))
        util = dev.utilisation(ResourceUsage(alms=50, registers=100, bram_bits=2048))
        assert util["alms"] == 0.5
        assert util["registers"] == 0.25
        assert util["bram_bits"] == pytest.approx(0.1)

    def test_invalid_device_rejected(self):
        with pytest.raises(ValueError):
            FPGADevice(name="d", alms=0, registers=1, m20k_blocks=1)


class TestTimingModel:
    def test_more_levels_is_slower(self):
        t = TimingModel()
        assert t.fmax_mhz(3) > t.fmax_mhz(9)

    def test_ceiling_applies(self):
        t = TimingModel()
        assert t.fmax_mhz(0) == t.fmax_ceiling_mhz

    def test_path_ns_linear_in_levels(self):
        t = TimingModel()
        assert t.path_ns(5) == pytest.approx(t.t_reg_ns + 5 * t.t_level_ns)

    def test_helpers(self):
        assert _clog2(2) == 1
        assert _clog2(121) == 7
        assert _next_pow2(14) == 16
        assert _next_pow2(2040) == 2048
        assert _next_pow2(1) == 1


class TestSynthesisCalibration:
    """The synthesis model lands near the paper's reported numbers."""

    def test_baseline_fmax_close_to_paper(self, paper_config):
        report = synthesize_baseline(paper_config)
        assert report.fmax_mhz == pytest.approx(PAPER_FIGURE2_BASELINE_FMAX, rel=0.05)

    def test_smache_fmax_close_to_paper(self, paper_config):
        report = synthesize_smache(paper_config)
        assert report.fmax_mhz == pytest.approx(235.3, rel=0.05)

    def test_baseline_is_faster_than_smache(self, paper_config):
        assert (
            synthesize_baseline(paper_config).fmax_mhz
            > synthesize_smache(paper_config).fmax_mhz
        )

    def test_baseline_resources_close_to_paper(self, paper_config):
        report = synthesize_baseline(paper_config)
        assert report.bram_bits == 0
        assert report.registers == pytest.approx(PAPER_RESOURCES["baseline"]["registers"], rel=0.3)
        assert report.alms == pytest.approx(PAPER_RESOURCES["baseline"]["alms"], rel=0.3)

    def test_smache_register_only_resources_close_to_paper(self):
        config = SmacheConfig.paper_example(mode=StreamBufferMode.REGISTER_ONLY)
        report = synthesize_smache(config)
        assert report.bram_bits == PAPER_RESOURCES["smache"]["bram_bits"]
        assert report.registers == pytest.approx(PAPER_RESOURCES["smache"]["registers"], rel=0.2)
        assert report.alms == pytest.approx(PAPER_RESOURCES["smache"]["alms"], rel=0.25)

    @pytest.mark.parametrize(
        "shape,mode,key",
        [
            ((11, 11), StreamBufferMode.REGISTER_ONLY, ("11x11", "r")),
            ((11, 11), StreamBufferMode.HYBRID, ("11x11", "h")),
            ((1024, 1024), StreamBufferMode.REGISTER_ONLY, ("1024x1024", "r")),
            ((1024, 1024), StreamBufferMode.HYBRID, ("1024x1024", "h")),
        ],
    )
    def test_actual_memory_close_to_paper_actual(self, shape, mode, key):
        config = SmacheConfig.paper_example(shape[0], shape[1], mode=mode)
        report = synthesize_smache(config)
        paper_actual = PAPER_TABLE1[key]["actual"]
        measured = report.memory.as_table_row()
        for col in ("Bsc", "Rsm", "Bsm"):
            if paper_actual[col] == 0:
                assert measured[col] == 0
            else:
                assert measured[col] == pytest.approx(paper_actual[col], rel=0.12)

    def test_estimate_tracks_actual(self, paper_config):
        """The paper's headline claim for Table I: the cost model closely
        tracks synthesis."""
        estimate = paper_config.cost_estimate()
        actual = synthesize_smache(paper_config).memory
        for col, est_value in estimate.as_table_row().items():
            act_value = actual.as_table_row()[col]
            if act_value == 0:
                continue
            assert abs(est_value - act_value) / act_value < 0.20


PAPER_FIGURE2_BASELINE_FMAX = 372.9


class TestSynthesisStructure:
    def test_breakdown_sums_to_total_registers(self, paper_config):
        report = synthesize_smache(paper_config)
        assert report.registers == pytest.approx(
            sum(b.registers for b in report.breakdown.values()), abs=1
        )

    def test_hybrid_uses_less_registers_than_register_only(self):
        h = synthesize_smache(SmacheConfig.paper_example(1024, 1024))
        r = synthesize_smache(
            SmacheConfig.paper_example(1024, 1024, mode=StreamBufferMode.REGISTER_ONLY)
        )
        assert h.registers < r.registers / 10
        assert h.bram_bits > r.bram_bits

    def test_fmax_independent_of_grid_size(self):
        small = synthesize_smache(SmacheConfig.paper_example(11, 11))
        big = synthesize_smache(SmacheConfig.paper_example(1024, 1024))
        assert small.fmax_mhz == big.fmax_mhz

    def test_describe_output(self, paper_config):
        text = synthesize_smache(paper_config).describe()
        assert "Fmax" in text and "BRAM bits" in text
        text_b = synthesize_baseline(paper_config).describe()
        assert "baseline" in text_b
