"""Tests for repro.hdlgen: automatic generation of the Smache HDL skeleton."""

import re

import pytest

from repro.core.config import SmacheConfig
from repro.core.partition import StreamBufferMode
from repro.hdlgen import (
    generate_parameter_header,
    generate_project,
    generate_smache_module,
    generate_testbench,
)


@pytest.fixture(scope="module")
def paper_cfg():
    return SmacheConfig.paper_example()


@pytest.fixture(scope="module")
def header(paper_cfg):
    return generate_parameter_header(paper_cfg)


@pytest.fixture(scope="module")
def module(paper_cfg):
    return generate_smache_module(paper_cfg)


def get_param(text: str, name: str) -> int:
    match = re.search(rf"localparam(?: integer)? {re.escape(name)}\s*=\s*(-?\d+);", text)
    assert match, f"parameter {name} not found"
    return int(match.group(1))


class TestParameterHeader:
    def test_window_parameters_match_plan(self, paper_cfg, header):
        plan = paper_cfg.plan()
        assert get_param(header, "SMACHE_WINDOW_DEPTH") == plan.stream.depth
        assert get_param(header, "SMACHE_WINDOW_REACH") == 22
        assert get_param(header, "SMACHE_WINDOW_LO") == -11
        assert get_param(header, "SMACHE_WINDOW_HI") == 11
        assert get_param(header, "SMACHE_GRID_POINTS") == 121
        assert get_param(header, "SMACHE_WORD_BITS") == 32

    def test_partition_parameters(self, header):
        assert get_param(header, "SMACHE_REG_SLOTS") == 11
        assert get_param(header, "SMACHE_BRAM_SLOTS") == 14

    def test_register_only_changes_partition_params(self, paper_cfg):
        cfg = SmacheConfig.paper_example(mode=StreamBufferMode.REGISTER_ONLY)
        text = generate_parameter_header(cfg)
        assert get_param(text, "SMACHE_REG_SLOTS") == 25
        assert get_param(text, "SMACHE_BRAM_SLOTS") == 0

    def test_static_buffer_parameters(self, header):
        assert get_param(header, "SMACHE_N_STATIC_BUFS") == 2
        assert get_param(header, "SMACHE_SB0_BASE") == 0
        assert get_param(header, "SMACHE_SB0_LENGTH") == 11
        assert get_param(header, "SMACHE_SB1_BASE") == 110
        assert get_param(header, "SMACHE_SB1_DOUBLE") == 1

    def test_tap_positions_listed(self, header):
        assert get_param(header, "SMACHE_N_TAPS") == 4
        # taps are at window positions window_hi - offset
        assert get_param(header, "SMACHE_TAP0_OFFSET") == -11
        assert get_param(header, "SMACHE_TAP0_POSITION") == 22
        assert get_param(header, "SMACHE_TAP3_OFFSET") == 11
        assert get_param(header, "SMACHE_TAP3_POSITION") == 0

    def test_include_guard(self, header):
        assert "`ifndef SMACHE_PARAMS_VH" in header
        assert header.strip().endswith("`endif // SMACHE_PARAMS_VH")

    def test_grid_size_is_parameter_only_change(self):
        """Two grids with the same structure differ only in the header values
        (the two-layer customisation claim)."""
        small = generate_smache_module(SmacheConfig.paper_example(11, 11))
        large = generate_smache_module(SmacheConfig.paper_example(201, 301))
        strip = lambda text: "\n".join(
            line for line in text.splitlines() if not line.startswith("//")
        )
        assert strip(small) == strip(large)

    def test_deterministic_output(self, paper_cfg, header):
        assert generate_parameter_header(paper_cfg) == header


class TestSmacheModule:
    def test_module_and_endmodule_balanced(self, module):
        assert module.count("module ") - module.count("endmodule") == 0
        assert module.count("endmodule") == 1

    def test_begin_end_balanced(self, module):
        begins = len(re.findall(r"\bbegin\b", module))
        ends = len(re.findall(r"\bend\b(?!module)", module))
        assert begins == ends

    def test_has_axi_style_ports(self, module):
        for port in ("s_axis_tdata", "s_axis_tvalid", "s_axis_tready",
                     "tuple_valid", "tuple_ready", "result_valid"):
            assert port in module

    def test_instantiates_every_static_buffer(self, module):
        assert "sb0_bank0" in module and "sb1_bank0" in module
        assert "sb2_bank0" not in module

    def test_no_static_buffers_case(self):
        from repro.core.boundary import BoundarySpec
        from repro.core.grid import GridSpec
        from repro.core.stencil import StencilShape

        cfg = SmacheConfig(
            grid=GridSpec(shape=(10, 10)),
            stencil=StencilShape.four_point_2d(),
            boundary=BoundarySpec.all_open(2),
        )
        text = generate_smache_module(cfg)
        assert "sb0_bank0" not in text
        assert "no static buffers required" in text

    def test_three_fsms_declared(self, module):
        assert "fsm1_state" in module and "fsm2_state" in module
        assert "FSM-3" in module  # write-through datapath comment

    def test_custom_module_name(self, paper_cfg):
        text = generate_smache_module(paper_cfg, module_name="my_cache")
        assert "module my_cache (" in text


class TestTestbenchAndProject:
    def test_testbench_expected_totals(self, paper_cfg):
        tb = generate_testbench(paper_cfg)
        assert "EXPECTED_STREAM_WORDS = 121" in tb
        assert "EXPECTED_DRAM_READS   = 143" in tb  # 121 + 2*11 prefetch
        assert "$finish" in tb

    def test_project_contains_three_files(self, paper_cfg):
        project = generate_project(paper_cfg)
        assert set(project.files) == {"smache_params.vh", "smache_top.v", "smache_top_tb.v"}

    def test_project_write_to_disk(self, paper_cfg, tmp_path):
        project = generate_project(paper_cfg)
        written = project.write_to(tmp_path / "hdl")
        assert len(written) == 3
        for path in written:
            assert (tmp_path / "hdl").exists()
            with open(path, encoding="utf-8") as fh:
                assert fh.read().strip()
