"""Fixture machinery for the lint tests: tiny on-disk package trees.

Every checker test writes a miniature package under ``tmp_path`` (module
names matter — the determinism and lock-discipline checkers are scoped by
dotted module prefix, and cross-module passes resolve files by content),
lints it, and asserts on the structured findings.
"""

import os
from typing import Dict, List, Optional, Sequence

import pytest

from repro.lint import Baseline, Checker, LintReport, run_lint


@pytest.fixture
def make_tree(tmp_path):
    """Write ``{relpath: source}`` files (plus missing __init__.py) and lint.

    Returns a callable: ``make_tree(files, checkers=..., baseline=...)`` →
    :class:`LintReport`.  Package ``__init__.py`` files are created for
    every intermediate directory, so ``repro/sweep/events.py`` really lints
    as module ``repro.sweep.events``.
    """

    def build(
        files: Dict[str, str],
        checkers: Optional[Sequence[Checker]] = None,
        baseline: Optional[Baseline] = None,
    ) -> LintReport:
        root = tmp_path / "tree"
        root.mkdir(exist_ok=True)
        for relpath, source in files.items():
            target = root / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            directory = target.parent
            while directory != root:
                init = directory / "__init__.py"
                if not init.exists():
                    init.write_text("")
                directory = directory.parent
            target.write_text(source)
        return run_lint([os.fspath(root)], checkers=checkers, baseline=baseline)

    return build


def finding_lines(report: LintReport, check: str) -> List[int]:
    """Line numbers of the active findings of one check, sorted."""
    return sorted(f.line for f in report.findings if f.check == check)


def finding_messages(report: LintReport, check: str) -> List[str]:
    return [f.message for f in report.findings if f.check == check]
