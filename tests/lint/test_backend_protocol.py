"""Structural Backend-protocol conformance."""

from tests.lint.conftest import finding_lines, finding_messages

BASE = '''\
class Backend:
    name = "abstract"

    def evaluate(self, design, request):
        raise NotImplementedError

    def evaluate_many(self, items, with_artifacts=True):
        return [self.evaluate(d, r) for d, r in items]
'''

GOOD = '''\
from repro.pipeline.backends import Backend


class SimBackend(Backend):
    name = "sim"

    def evaluate(self, design, request):
        return (design, request)
'''


def test_conforming_subclass_is_clean(make_tree):
    report = make_tree(
        {
            "repro/pipeline/backends.py": BASE,
            "repro/pipeline/sim.py": GOOD,
        }
    )
    assert finding_lines(report, "backend-protocol") == []


def test_missing_evaluate_is_reported(make_tree):
    source = (
        "from repro.pipeline.backends import Backend\n"
        "\n"
        "\n"
        "class HollowBackend(Backend):\n"
        "    name = 'hollow'\n"
    )
    report = make_tree(
        {"repro/pipeline/backends.py": BASE, "repro/pipeline/h.py": source}
    )
    messages = finding_messages(report, "backend-protocol")
    assert len(messages) == 1
    assert "never implements evaluate" in messages[0]


def test_wrong_evaluate_arity(make_tree):
    source = (
        "from repro.pipeline.backends import Backend\n"
        "\n"
        "\n"
        "class OddBackend(Backend):\n"
        "    name = 'odd'\n"
        "\n"
        "    def evaluate(self, design):\n"
        "        return design\n"
    )
    report = make_tree(
        {"repro/pipeline/backends.py": BASE, "repro/pipeline/o.py": source}
    )
    messages = finding_messages(report, "backend-protocol")
    assert any("evaluate(design, request)" in m for m in messages)


def test_evaluate_many_must_accept_with_artifacts(make_tree):
    source = (
        "from repro.pipeline.backends import Backend\n"
        "\n"
        "\n"
        "class BatchBackend(Backend):\n"
        "    name = 'batch'\n"
        "\n"
        "    def evaluate(self, design, request):\n"
        "        return design\n"
        "\n"
        "    def evaluate_many(self, items):\n"
        "        return list(items)\n"
    )
    report = make_tree(
        {"repro/pipeline/backends.py": BASE, "repro/pipeline/b.py": source}
    )
    messages = finding_messages(report, "backend-protocol")
    assert any("with_artifacts" in m for m in messages)


def test_missing_name_is_a_warning_not_an_error(make_tree):
    source = (
        "from repro.pipeline.backends import Backend\n"
        "\n"
        "\n"
        "class Wrapper(Backend):\n"
        "    def __init__(self, inner):\n"
        "        self.name = inner.name\n"
        "\n"
        "    def evaluate(self, design, request):\n"
        "        return design\n"
    )
    report = make_tree(
        {"repro/pipeline/backends.py": BASE, "repro/pipeline/w.py": source}
    )
    warnings = [
        f for f in report.findings if f.check == "backend-protocol"
    ]
    assert len(warnings) == 1 and warnings[0].severity == "warning"
    # Warnings never gate a default run, only --strict.
    assert report.exit_code(strict=False) == 0
    assert report.exit_code(strict=True) == 1


def test_inherited_evaluate_through_intermediate_class(make_tree):
    source = (
        "from repro.pipeline.backends import Backend\n"
        "\n"
        "\n"
        "class MidBackend(Backend):\n"
        "    name = 'mid'\n"
        "\n"
        "    def evaluate(self, design, request):\n"
        "        return design\n"
        "\n"
        "\n"
        "class LeafBackend(MidBackend):\n"
        "    name = 'leaf'\n"
    )
    report = make_tree(
        {"repro/pipeline/backends.py": BASE, "repro/pipeline/chain.py": source}
    )
    assert finding_lines(report, "backend-protocol") == []


def test_pass_skips_without_protocol_root(make_tree):
    # A tree without the Backend base (partial lint) holds nothing to it.
    report = make_tree({"repro/pipeline/sim.py": GOOD})
    assert finding_lines(report, "backend-protocol") == []
