"""Canonical-field discipline on synthetic record/consumer pairs."""

from tests.lint.conftest import finding_lines, finding_messages

RECORD = '''\
CANONICAL_FIELDS = ("key", "label", "cycles", "extra")


class PointRecord:
    def canonical(self):
        return {}

    def to_json_dict(self):
        payload = self.canonical()
        payload["meta"] = {}
        return payload
'''

GOOD_CONSUMER = '''\
def persist(record):
    payload = record.to_json_dict()
    payload["kind"] = "record"  # the JSONL envelope tag
    return payload


def project(record):
    data = record.canonical()
    data["meta"] = {"worker": 3}
    data["cycles"] = 0
    return data
'''

BAD_CONSUMER = '''\
def decorate(record):
    payload = record.canonical()
    payload["note"] = "hi"
    payload.update({"debug": True})
    return payload
'''


def test_disciplined_consumers_are_clean(make_tree):
    report = make_tree(
        {
            "repro/sweep/record.py": RECORD,
            "repro/sweep/checkpoint.py": GOOD_CONSUMER,
        }
    )
    assert finding_lines(report, "canonical-fields") == []


def test_out_of_contract_keys_are_flagged(make_tree):
    report = make_tree(
        {
            "repro/sweep/record.py": RECORD,
            "repro/sweep/rogue.py": BAD_CONSUMER,
        }
    )
    assert finding_lines(report, "canonical-fields") == [3, 4]
    messages = " ".join(finding_messages(report, "canonical-fields"))
    assert "'note'" in messages and "'debug'" in messages


def test_reassignment_clears_tracking(make_tree):
    source = (
        "def rebuild(record):\n"
        "    payload = record.canonical()\n"
        "    payload = {}\n"
        "    payload['anything'] = 1  # a plain dict now\n"
        "    return payload\n"
    )
    report = make_tree(
        {"repro/sweep/record.py": RECORD, "repro/sweep/re.py": source}
    )
    assert finding_lines(report, "canonical-fields") == []


def test_pass_skips_without_canonical_fields_definition(make_tree):
    report = make_tree({"repro/sweep/rogue.py": BAD_CONSUMER})
    assert finding_lines(report, "canonical-fields") == []
