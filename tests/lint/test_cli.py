"""The ``python -m repro.lint`` command-line surface."""

import json
import os

import pytest

from repro.lint.__main__ import main

BAD = "import random\n\n\ndef roll():\n    rng = random.Random()\n"


@pytest.fixture
def bad_tree(tmp_path):
    root = tmp_path / "tree"
    pkg = root / "repro" / "sweep"
    pkg.mkdir(parents=True)
    (root / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "m.py").write_text(BAD)
    return root


def test_check_exits_one_on_findings(bad_tree, capsys):
    assert main(["check", os.fspath(bad_tree)]) == 1
    out = capsys.readouterr().out
    assert "[determinism]" in out and "m.py:5:" in out


def test_check_exits_zero_on_clean_tree(tmp_path, capsys):
    clean = tmp_path / "clean"
    clean.mkdir()
    (clean / "ok.py").write_text("x = 1\n")
    assert main(["check", os.fspath(clean), "--strict"]) == 0


def test_json_report_shape(bad_tree, capsys):
    assert main(["check", os.fspath(bad_tree), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["errors"] == 1
    (finding,) = payload["findings"]
    assert finding["check"] == "determinism" and finding["line"] == 5


def test_update_baseline_then_gate_is_green(bad_tree, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert (
        main(
            [
                "check",
                os.fspath(bad_tree),
                "--baseline",
                os.fspath(baseline),
                "--update-baseline",
            ]
        )
        == 0
    )
    assert baseline.exists()
    # Default run is green against the recorded baseline...
    assert (
        main(["check", os.fspath(bad_tree), "--baseline", os.fspath(baseline)])
        == 0
    )
    # ...and --strict stays green too while the debt still matches.
    assert (
        main(
            [
                "check",
                os.fspath(bad_tree),
                "--baseline",
                os.fspath(baseline),
                "--strict",
            ]
        )
        == 0
    )


def test_stale_baseline_gates_strict_only(bad_tree, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    main(
        [
            "check",
            os.fspath(bad_tree),
            "--baseline",
            os.fspath(baseline),
            "--update-baseline",
        ]
    )
    (bad_tree / "repro" / "sweep" / "m.py").write_text("x = 1\n")  # debt paid
    args = ["check", os.fspath(bad_tree), "--baseline", os.fspath(baseline)]
    assert main(args) == 0
    assert main([*args, "--strict"]) == 1


def test_check_filter_and_unknown_ids(bad_tree, capsys):
    assert main(["check", os.fspath(bad_tree), "--check", "picklability"]) == 0
    assert main(["check", os.fspath(bad_tree), "--check", "nonsense"]) == 2
    assert "unknown checker" in capsys.readouterr().err


def test_missing_path_is_a_usage_error(capsys):
    assert main(["check", "no/such/path"]) == 2


def test_checks_subcommand_lists_all_six(capsys):
    assert main(["checks"]) == 0
    out = capsys.readouterr().out
    for check_id in (
        "backend-protocol",
        "canonical-fields",
        "determinism",
        "event-schema",
        "lock-discipline",
        "picklability",
    ):
        assert check_id in out
