"""Good/bad pairs for the determinism checker."""

from repro.lint.checkers.determinism import DeterminismChecker

from tests.lint.conftest import finding_lines, finding_messages

GOOD = '''\
import random
import time


def pace(rng: random.Random) -> float:
    started = time.monotonic()  # monotonic pacing is allowed
    value = rng.uniform(0.0, 1.0)
    seeded = random.Random(42)
    return started + value + seeded.random()
'''

BAD = '''\
import random
import time
from datetime import datetime


def stamp():
    now = time.time()
    also = datetime.now()
    return now, also


def roll():
    rng = random.Random()
    return rng.random() + random.uniform(0.0, 1.0)
'''


def test_clean_module_produces_nothing(make_tree):
    report = make_tree({"repro/sweep/good.py": GOOD})
    assert finding_lines(report, "determinism") == []


def test_bad_module_flags_every_site(make_tree):
    report = make_tree({"repro/sweep/bad.py": BAD})
    # time.time() + datetime.now() + unseeded Random() + global uniform().
    assert finding_lines(report, "determinism") == [7, 8, 13, 14]


def test_scope_is_module_prefix_based(make_tree):
    # The same source outside the canonical prefixes is not held to the
    # contract: analysis scripts may read clocks freely.
    report = make_tree({"repro/analysis/bad.py": BAD})
    assert finding_lines(report, "determinism") == []


def test_wall_clock_reference_without_call_is_flagged(make_tree):
    source = (
        "import time\n"
        "\n"
        "def observer(clock=time.time):\n"
        "    return clock\n"
    )
    report = make_tree({"repro/serve/seam.py": source})
    assert finding_lines(report, "determinism") == [3]


def test_shadowed_name_is_not_mistaken_for_the_module(make_tree):
    source = (
        "def kernel(random):\n"
        "    # `random` is a parameter here, not the stdlib module\n"
        "    return random.uniform(0.0, 1.0)\n"
    )
    report = make_tree({"repro/sweep/shadow.py": source})
    assert finding_lines(report, "determinism") == []


def test_numpy_global_rng_and_unseeded_default_rng(make_tree):
    source = (
        "import numpy as np\n"
        "\n"
        "def sample():\n"
        "    legacy = np.random.rand(3)\n"
        "    fresh = np.random.default_rng()\n"
        "    good = np.random.default_rng(7)\n"
        "    return legacy, fresh, good\n"
    )
    report = make_tree({"repro/pipeline/noise.py": source})
    assert finding_lines(report, "determinism") == [4, 5]


def test_custom_prefixes(make_tree):
    checker = DeterminismChecker(prefixes=("repro.analysis",))
    report = make_tree({"repro/analysis/bad.py": BAD}, checkers=[checker])
    assert len(finding_messages(report, "determinism")) == 4
