"""Cross-module event-schema completeness, on synthetic package trees."""

from tests.lint.conftest import finding_lines, finding_messages

EVENTS = '''\
class RunEvent:
    kind = ""


class PointStarted(RunEvent):
    kind = "point_started"


class CheckpointFlushed(RunEvent):
    kind = "checkpoint_flushed"
'''

EVENTLOG = '''\
from repro.sweep.events import CheckpointFlushed, PointStarted

_RECORD_EVENTS = {}
_FLAT_EVENTS = {
    "point_started": PointStarted,
    "checkpoint_flushed": CheckpointFlushed,
}
'''

FOLLOW = '''\
class _EventLogTailer:
    def _consume(self, payload):
        kind = payload.get("kind")
        if kind == "point_started":
            return 1
        elif kind == "checkpoint_flushed":
            pass  # explicit no-op
        return 0
'''


def test_complete_schema_is_clean(make_tree):
    report = make_tree(
        {
            "repro/sweep/events.py": EVENTS,
            "repro/sweep/eventlog.py": EVENTLOG,
            "repro/sweep/follow.py": FOLLOW,
        }
    )
    assert finding_lines(report, "event-schema") == []


def test_unregistered_event_is_reported_against_its_definition(make_tree):
    # A synthetic event added to events.py but nowhere else: the
    # cross-module pass must anchor both findings at the class definition.
    events = EVENTS + (
        "\n\nclass GhostEvent(RunEvent):\n    kind = \"ghost\"\n"
    )
    report = make_tree(
        {
            "repro/sweep/events.py": events,
            "repro/sweep/eventlog.py": EVENTLOG,
            "repro/sweep/follow.py": FOLLOW,
        }
    )
    lines = finding_lines(report, "event-schema")
    assert lines == [13, 13]  # serializer + follow, both at `class GhostEvent`
    messages = " ".join(finding_messages(report, "event-schema"))
    assert "serializer" in messages and "follow dispatcher" in messages


def test_missing_follow_branch_only(make_tree):
    follow = FOLLOW.replace(
        '        elif kind == "checkpoint_flushed":\n            pass  # explicit no-op\n',
        "",
    )
    report = make_tree(
        {
            "repro/sweep/events.py": EVENTS,
            "repro/sweep/eventlog.py": EVENTLOG,
            "repro/sweep/follow.py": follow,
        }
    )
    messages = finding_messages(report, "event-schema")
    assert len(messages) == 1 and "follow dispatcher" in messages[0]
    assert "checkpoint_flushed" in messages[0]


def test_event_without_kind_literal(make_tree):
    events = EVENTS + "\n\nclass Tagless(RunEvent):\n    pass\n"
    report = make_tree(
        {
            "repro/sweep/events.py": events,
            "repro/sweep/eventlog.py": EVENTLOG,
            "repro/sweep/follow.py": FOLLOW,
        }
    )
    messages = finding_messages(report, "event-schema")
    assert len(messages) == 1 and "no literal kind" in messages[0]


def test_pass_skips_when_serializer_and_follow_absent(make_tree):
    # Linting events.py alone (e.g. a single-file invocation) must not
    # invent findings about modules it cannot see.
    report = make_tree({"repro/sweep/events.py": EVENTS})
    assert finding_lines(report, "event-schema") == []


def test_transitive_subclasses_are_covered(make_tree):
    events = EVENTS + (
        "\n\nclass PointDone(PointStarted):\n    kind = \"point_done\"\n"
    )
    report = make_tree(
        {
            "repro/sweep/events.py": events,
            "repro/sweep/eventlog.py": EVENTLOG,
            "repro/sweep/follow.py": FOLLOW,
        }
    )
    messages = " ".join(finding_messages(report, "event-schema"))
    assert "PointDone" in messages
