"""Inferred lock-protection sets and bare-access detection."""

from repro.lint.checkers.lock_discipline import LockDisciplineChecker

from tests.lint.conftest import finding_lines, finding_messages

GOOD = '''\
import threading


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}
        self._hits = 0

    def get(self, key):
        with self._lock:
            self._hits += 1
            return self._entries.get(key)

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
'''

BAD = '''\
import threading


class Cache:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value

    def peek(self, key):
        return self._entries.get(key)  # bare read of protected state
'''


def test_disciplined_class_is_clean(make_tree):
    report = make_tree({"repro/serve/cache.py": GOOD})
    assert finding_lines(report, "lock-discipline") == []


def test_bare_access_to_protected_attr_is_flagged(make_tree):
    report = make_tree({"repro/serve/cache.py": BAD})
    assert finding_lines(report, "lock-discipline") == [14]
    (message,) = finding_messages(report, "lock-discipline")
    assert "_entries" in message and "peek" in message


def test_init_accesses_are_sanctioned(make_tree):
    # GOOD already writes _entries/_hits bare in __init__ — covered above —
    # but make the property explicit with a reconfigure-style constructor.
    source = GOOD + (
        "\n"
        "    def _unsafe_reset(self):\n"
        "        self._entries = {}\n"
    )
    report = make_tree({"repro/serve/cache.py": source})
    lines = finding_lines(report, "lock-discipline")
    assert len(lines) == 1  # only the non-__init__ bare write


def test_never_locked_attrs_are_not_protected(make_tree):
    source = '''\
import threading


class Metrics:
    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {}
        self.started = 123.0  # display-only, never under the lock

    def bump(self, key):
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + 1

    def uptime(self, now):
        return now - self.started
'''
    report = make_tree({"repro/serve/metrics.py": source})
    assert finding_lines(report, "lock-discipline") == []


def test_scope_excludes_other_modules(make_tree):
    report = make_tree({"repro/sweep/cache.py": BAD})
    assert finding_lines(report, "lock-discipline") == []


def test_asyncio_locks_are_out_of_scope(make_tree):
    source = '''\
import asyncio


class Loop:
    def __init__(self):
        self._lock = asyncio.Lock()
        self._state = {}

    async def set(self, k, v):
        async with self._lock:
            self._state[k] = v

    def peek(self, k):
        return self._state.get(k)
'''
    report = make_tree({"repro/serve/aio.py": source})
    assert finding_lines(report, "lock-discipline") == []


def test_custom_scopes(make_tree):
    checker = LockDisciplineChecker(scopes=("repro.sweep",))
    report = make_tree({"repro/sweep/cache.py": BAD}, checkers=[checker])
    assert len(finding_messages(report, "lock-discipline")) == 1
