"""Picklability at pool submission and backend-registration seams."""

from tests.lint.conftest import finding_lines, finding_messages

GOOD = '''\
def _evaluate_chunk(chunk):
    return chunk


def run(pool, chunks):
    return [pool.submit(_evaluate_chunk, chunk) for chunk in chunks]
'''

BAD = '''\
def run(pool, chunks):
    def local_eval(chunk):
        return chunk

    futures = [pool.submit(local_eval, chunk) for chunk in chunks]
    futures.append(pool.submit(lambda: None))
    return futures
'''


def test_module_level_callables_are_clean(make_tree):
    report = make_tree({"repro/sweep/good.py": GOOD})
    assert finding_lines(report, "picklability") == []


def test_lambda_and_closure_submissions_are_flagged(make_tree):
    report = make_tree({"repro/sweep/bad.py": BAD})
    assert finding_lines(report, "picklability") == [5, 6]
    messages = " ".join(finding_messages(report, "picklability"))
    assert "local_eval" in messages and "lambda" in messages


def test_register_backend_factory_shapes(make_tree):
    source = (
        "from repro.pipeline.backends import register_backend\n"
        "\n"
        "\n"
        "def _factory():\n"
        "    return object()\n"
        "\n"
        "\n"
        "def install():\n"
        "    register_backend('good', _factory)\n"
        "    register_backend('bad', lambda: object())\n"
        "    def local_factory():\n"
        "        return object()\n"
        "    register_backend('worse', factory=local_factory)\n"
    )
    report = make_tree({"repro/pipeline/plugins.py": source})
    assert finding_lines(report, "picklability") == [10, 13]


def test_executor_map_receiver_heuristic(make_tree):
    source = (
        "def run(executor, values, mapping):\n"
        "    a = executor.map(lambda v: v, values)  # flagged: executor\n"
        "    b = mapping.map(lambda v: v)  # not an executor name\n"
        "    return a, b\n"
    )
    report = make_tree({"repro/sweep/maps.py": source})
    assert finding_lines(report, "picklability") == [2]


def test_local_class_passed_to_submit(make_tree):
    source = (
        "def run(pool):\n"
        "    class Job:\n"
        "        pass\n"
        "    return pool.submit(Job)\n"
    )
    report = make_tree({"repro/sweep/cls.py": source})
    messages = finding_messages(report, "picklability")
    assert len(messages) == 1 and "class 'Job'" in messages[0]
