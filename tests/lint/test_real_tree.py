"""Meta-tests against the real source tree.

Two guarantees, both required by the lint contract:

* the tree as committed is **strict-clean** (the CI gate is meaningful);
* deliberately re-introducing a contract violation into real modules makes
  the gate go red *at the right file and line* (the gate has teeth).
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.lint import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def _copy_real(tmp_path, *relpaths, patches=None):
    """Copy real src files into a fixture tree, optionally patched."""
    patches = patches or {}
    root = tmp_path / "tree"
    for relpath in relpaths:
        text = (SRC / relpath).read_text()
        if relpath in patches:
            text = patches[relpath](text)
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        directory = target.parent
        while directory != root:
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text("")
            directory = directory.parent
        target.write_text(text)
    return root


def test_real_tree_is_strict_clean():
    report = run_lint([os.fspath(SRC)])
    assert report.exit_code(strict=True) == 0, report.format_text()
    # The gate runs with an *empty* baseline: suppression is pragmas only.
    assert report.baseline_suppressed == []
    assert report.pragma_suppressed, "expected the sanctioned pragma sites"


def test_cli_gate_on_real_tree():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.fspath(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "check", "src", "--strict"],
        cwd=os.fspath(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_unregistered_runevent_turns_the_gate_red(tmp_path):
    ghost = '\n\nclass GhostEvent(RunEvent):\n    kind = "ghost_event"\n'
    root = _copy_real(
        tmp_path,
        "repro/sweep/events.py",
        "repro/sweep/eventlog.py",
        "repro/sweep/follow.py",
        patches={"repro/sweep/events.py": lambda text: text + ghost},
    )
    report = run_lint([os.fspath(root)])
    assert report.exit_code() == 1
    hits = [f for f in report.findings if f.check == "event-schema"]
    assert len(hits) == 2  # serializer/replay + follow dispatcher
    expected_line = len((SRC / "repro/sweep/events.py").read_text().splitlines()) + 3
    for finding in hits:
        assert finding.path.endswith("repro/sweep/events.py")
        assert finding.line == expected_line


def test_wall_clock_in_record_module_turns_the_gate_red(tmp_path):
    stamp = "\n\nimport time\n_NOW = time.time()\n"
    root = _copy_real(
        tmp_path,
        "repro/sweep/record.py",
        patches={"repro/sweep/record.py": lambda text: text + stamp},
    )
    report = run_lint([os.fspath(root)])
    hits = [f for f in report.findings if f.check == "determinism"]
    assert len(hits) == 1
    expected_line = len((SRC / "repro/sweep/record.py").read_text().splitlines()) + 4
    assert hits[0].path.endswith("repro/sweep/record.py")
    assert hits[0].line == expected_line
    assert "time.time" in hits[0].message
    assert report.exit_code() == 1


def test_unlocked_write_in_engine_turns_the_gate_red(tmp_path):
    unsafe = "    def _unsafe_probe(self):\n        return self._sessions\n\n"

    def patch(text):
        # Insert a bare access as the first method of AnalyticBatchEngine.
        anchor = text.index("\n    def ", text.index("class AnalyticBatchEngine")) + 1
        return text[:anchor] + unsafe + text[anchor:]

    root = _copy_real(
        tmp_path,
        "repro/pipeline/analytic_batch.py",
        patches={"repro/pipeline/analytic_batch.py": patch},
    )
    patched = (root / "repro/pipeline/analytic_batch.py").read_text()
    expected_line = (
        patched.splitlines().index("        return self._sessions") + 1
    )
    report = run_lint([os.fspath(root)])
    hits = [f for f in report.findings if f.check == "lock-discipline"]
    assert len(hits) == 1
    assert hits[0].path.endswith("analytic_batch.py")
    assert hits[0].line == expected_line
    assert "_sessions" in hits[0].message
    assert report.exit_code() == 1
