"""Pragma and baseline suppression semantics."""

from repro.lint import Baseline, Finding

BAD_LINE = "    rng = random.Random()\n"

MODULE = "import random\n\n\ndef roll():\n" + BAD_LINE


def _one_finding(report):
    assert len(report.findings) == 1, report.format_text()
    return report.findings[0]


def test_trailing_pragma_suppresses_own_line(make_tree):
    source = MODULE.replace(
        BAD_LINE,
        "    rng = random.Random()  # repro: allow[determinism] test jitter\n",
    )
    report = make_tree({"repro/sweep/m.py": source})
    assert report.findings == []
    assert len(report.pragma_suppressed) == 1
    assert report.pragma_suppressed[0].check == "determinism"


def test_standalone_pragma_covers_next_line(make_tree):
    source = MODULE.replace(
        BAD_LINE,
        "    # repro: allow[determinism] test jitter\n" + BAD_LINE,
    )
    report = make_tree({"repro/sweep/m.py": source})
    assert report.findings == []
    assert len(report.pragma_suppressed) == 1


def test_pragma_for_a_different_check_does_not_apply(make_tree):
    source = MODULE.replace(
        BAD_LINE,
        "    rng = random.Random()  # repro: allow[picklability] wrong id\n",
    )
    report = make_tree({"repro/sweep/m.py": source})
    assert _one_finding(report).check == "determinism"


def test_wildcard_pragma_suppresses_everything(make_tree):
    source = MODULE.replace(
        BAD_LINE,
        "    rng = random.Random()  # repro: allow[*] fixture\n",
    )
    report = make_tree({"repro/sweep/m.py": source})
    assert report.findings == []


def test_baseline_absorbs_matching_finding_ignoring_line(make_tree):
    # Record the finding once, then lint a shifted copy of the module: the
    # baseline matches on (check, path, message), not offsets.
    first = make_tree({"repro/sweep/m.py": MODULE})
    entry = _one_finding(first)
    shifted = "# a new comment line shifts everything down\n" + MODULE
    baseline = Baseline([entry])
    second = make_tree({"repro/sweep/m.py": shifted}, baseline=baseline)
    assert second.findings == []
    assert len(second.baseline_suppressed) == 1
    assert second.stale_baseline == []
    assert second.exit_code(strict=True) == 0


def test_baseline_is_a_multiset(make_tree):
    doubled = MODULE + "\n\ndef roll_again():\n" + BAD_LINE
    first = make_tree({"repro/sweep/m.py": doubled})
    assert len(first.findings) == 2
    # One baseline entry absorbs one finding; the second still gates.
    baseline = Baseline([first.findings[0]])
    second = make_tree({"repro/sweep/m.py": doubled}, baseline=baseline)
    assert len(second.findings) == 1
    assert len(second.baseline_suppressed) == 1


def test_stale_baseline_entries_gate_only_strict(make_tree):
    stale = Finding(
        check="determinism",
        path="repro/sweep/gone.py",
        line=1,
        col=0,
        message="this was fixed long ago",
    )
    report = make_tree({"repro/sweep/m.py": "x = 1\n"}, baseline=Baseline([stale]))
    assert report.findings == []
    assert len(report.stale_baseline) == 1
    assert report.exit_code(strict=False) == 0
    assert report.exit_code(strict=True) == 1
    assert "stale" in report.format_text()


def test_baseline_round_trip(tmp_path, make_tree):
    first = make_tree({"repro/sweep/m.py": MODULE})
    path = tmp_path / "baseline.json"
    Baseline.write(str(path), first.findings)
    loaded = Baseline.load(str(path))
    assert len(loaded) == 1
    second = make_tree({"repro/sweep/m.py": MODULE}, baseline=loaded)
    assert second.findings == [] and len(second.baseline_suppressed) == 1


def test_absent_baseline_file_is_empty(tmp_path):
    assert len(Baseline.load(str(tmp_path / "nope.json"))) == 0


def test_syntax_errors_become_findings(make_tree):
    report = make_tree({"repro/sweep/broken.py": "def broken(:\n"})
    assert any(f.check == "syntax" for f in report.findings)
    assert report.exit_code() == 1
