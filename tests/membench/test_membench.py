"""Tests for the MP-Stream-style memory micro-benchmark."""

import pytest

from repro.membench.patterns import AccessPattern, generate_pattern
from repro.membench.runner import measure_pattern, run_membench
from repro.memory.dram import DRAMTiming


class TestPatternGeneration:
    def test_contiguous(self):
        trace = generate_pattern(AccessPattern.CONTIGUOUS, 10, 1000)
        assert trace == list(range(10))

    def test_contiguous_wraps_region(self):
        trace = generate_pattern(AccessPattern.CONTIGUOUS, 10, 4)
        assert trace == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_strided(self):
        trace = generate_pattern(AccessPattern.STRIDED, 5, 1000, stride=7)
        assert trace == [0, 7, 14, 21, 28]

    def test_random_within_region_and_deterministic(self):
        a = generate_pattern(AccessPattern.RANDOM, 100, 64, seed=3)
        b = generate_pattern(AccessPattern.RANDOM, 100, 64, seed=3)
        assert a == b
        assert all(0 <= x < 64 for x in a)

    def test_stencil_gather_visits_neighbours(self):
        trace = generate_pattern(AccessPattern.STENCIL_GATHER, 8, 4096, row_width=64)
        assert trace[:4] == [(0 - 64) % 4096, 4095, 1, 64]

    def test_lengths_respected(self):
        for pattern in AccessPattern:
            assert len(generate_pattern(pattern, 37, 512)) == 37

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            generate_pattern(AccessPattern.CONTIGUOUS, 0, 100)
        with pytest.raises(ValueError):
            generate_pattern(AccessPattern.STRIDED, 10, 100, stride=0)


class TestMeasurement:
    @pytest.fixture(scope="class")
    def report(self):
        return run_membench(n_accesses=1024)

    def test_contiguous_sustains_near_peak(self, report):
        contiguous = report.by_pattern()[AccessPattern.CONTIGUOUS]
        assert contiguous.efficiency > 0.9

    def test_random_is_much_slower(self, report):
        random = report.by_pattern()[AccessPattern.RANDOM]
        assert random.efficiency < 0.3
        assert report.contiguous_advantage() > 3.0

    def test_strided_between_the_extremes(self, report):
        table = report.by_pattern()
        assert (
            table[AccessPattern.RANDOM].words_per_cycle
            <= table[AccessPattern.STRIDED].words_per_cycle
            <= table[AccessPattern.CONTIGUOUS].words_per_cycle
        )

    def test_stencil_gather_is_not_contiguous_rate(self, report):
        table = report.by_pattern()
        assert (
            table[AccessPattern.STENCIL_GATHER].words_per_cycle
            < table[AccessPattern.CONTIGUOUS].words_per_cycle
        )

    def test_interleaved_rw_counts_writes(self, report):
        interleaved = report.by_pattern()[AccessPattern.INTERLEAVED_RW]
        assert interleaved.accesses > 1024  # reads plus the interleaved writes

    def test_bandwidth_scales_with_frequency(self, report):
        contiguous = report.by_pattern()[AccessPattern.CONTIGUOUS]
        assert contiguous.bandwidth_mbps(400.0) == pytest.approx(
            2 * contiguous.bandwidth_mbps(200.0)
        )

    def test_format_lists_every_pattern(self, report):
        text = report.format()
        for pattern in AccessPattern:
            assert pattern.value in text

    def test_no_penalty_timing_closes_the_gap(self):
        flat = DRAMTiming(random_access_cycles=1, row_miss_penalty=0)
        contiguous = measure_pattern(AccessPattern.CONTIGUOUS, n_accesses=512, timing=flat)
        random = measure_pattern(AccessPattern.RANDOM, n_accesses=512, timing=flat)
        assert random.words_per_cycle == pytest.approx(contiguous.words_per_cycle, rel=0.1)
