"""Tests for repro.memory.bram and repro.memory.regfile."""

import pytest

from repro.memory.bram import BRAMFifo, BRAMModel, PortConflictError
from repro.memory.regfile import RegisterFile


class TestBRAMModel:
    def test_read_write_roundtrip(self):
        bram = BRAMModel("b", depth=16)
        bram.write(3, 1.5, cycle=0)
        assert bram.read(3, cycle=1) == 1.5

    def test_one_read_per_cycle_enforced(self):
        bram = BRAMModel("b", depth=16, read_ports=1)
        bram.read(0, cycle=0)
        with pytest.raises(PortConflictError):
            bram.read(1, cycle=0)

    def test_read_allowed_again_next_cycle(self):
        bram = BRAMModel("b", depth=16)
        bram.read(0, cycle=0)
        bram.read(1, cycle=1)
        assert bram.max_reads_in_cycle == 1

    def test_one_write_per_cycle_enforced(self):
        bram = BRAMModel("b", depth=16, write_ports=1)
        bram.write(0, 1.0, cycle=0)
        with pytest.raises(PortConflictError):
            bram.write(1, 2.0, cycle=0)

    def test_dual_read_ports(self):
        bram = BRAMModel("b", depth=16, read_ports=2)
        bram.read(0, cycle=0)
        bram.read(1, cycle=0)
        assert bram.max_reads_in_cycle == 2

    def test_out_of_range_access(self):
        bram = BRAMModel("b", depth=4)
        with pytest.raises(IndexError):
            bram.read(4, cycle=0)
        with pytest.raises(IndexError):
            bram.write(-1, 0.0, cycle=0)

    def test_total_bits(self):
        assert BRAMModel("b", depth=14, word_bits=32).total_bits == 448

    def test_fill_and_reset(self):
        bram = BRAMModel("b", depth=8)
        bram.fill([1, 2, 3])
        assert bram.read(1, cycle=0) == 2
        bram.reset()
        assert bram.read(1, cycle=1) == 0
        with pytest.raises(ValueError):
            bram.fill(range(20))

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            BRAMModel("b", depth=0)
        with pytest.raises(ValueError):
            BRAMModel("b", depth=4, word_bits=0)


class TestBRAMFifo:
    def test_shift_through_behaviour(self):
        fifo = BRAMFifo("f", depth=3)
        assert fifo.push(1.0, cycle=0) is None
        assert fifo.push(2.0, cycle=1) is None
        assert fifo.push(3.0, cycle=2) is None
        assert fifo.full
        assert fifo.push(4.0, cycle=3) == 1.0
        assert fifo.push(5.0, cycle=4) == 2.0

    def test_zero_depth_passes_through(self):
        fifo = BRAMFifo("f", depth=0)
        assert fifo.push(7.0, cycle=0) == 7.0

    def test_never_exceeds_one_read_one_write_per_cycle(self):
        fifo = BRAMFifo("f", depth=4)
        for cycle in range(32):
            fifo.push(float(cycle), cycle=cycle)
        assert fifo.bram.max_reads_in_cycle <= 1
        assert fifo.bram.max_writes_in_cycle <= 1

    def test_reset(self):
        fifo = BRAMFifo("f", depth=2)
        fifo.push(1.0, cycle=0)
        fifo.reset()
        assert len(fifo) == 0


class TestRegisterFile:
    def test_read_write(self):
        rf = RegisterFile("r", depth=8)
        rf.write(2, 9.0)
        assert rf.read(2) == 9.0

    def test_parallel_reads_unrestricted(self):
        rf = RegisterFile("r", depth=8)
        rf.fill(range(8))
        assert rf.read_many([0, 3, 5, 7]) == [0.0, 3.0, 5.0, 7.0]

    def test_shift_in(self):
        rf = RegisterFile("r", depth=3)
        rf.fill([1, 2, 3])
        evicted = rf.shift_in(99.0)
        assert evicted == 3.0
        assert list(rf.storage) == [99.0, 1.0, 2.0]

    def test_out_of_range(self):
        rf = RegisterFile("r", depth=2)
        with pytest.raises(IndexError):
            rf.read(2)
        with pytest.raises(IndexError):
            rf.write(5, 0.0)

    def test_total_bits_and_reset(self):
        rf = RegisterFile("r", depth=11, word_bits=32)
        assert rf.total_bits == 352
        rf.write(0, 1.0)
        rf.reset()
        assert rf.read(0) == 0.0

    def test_fill_too_large_rejected(self):
        rf = RegisterFile("r", depth=2)
        with pytest.raises(ValueError):
            rf.fill([1, 2, 3])
