"""Tests for repro.memory.dram: the DRAM timing and traffic model."""

import numpy as np
import pytest

from repro.memory.dram import DRAMCommand, DRAMModel, DRAMTiming
from repro.sim.engine import Simulator


def make_dram(**kwargs):
    sim = Simulator()
    dram = DRAMModel(sim, size_words=1024, **kwargs)
    return sim, dram


def read_n_words(sim, dram, addresses, max_cycles=10_000):
    """Push read commands for the addresses and collect the responses."""
    addresses = list(addresses)
    responses = []
    to_send = list(addresses)
    while len(responses) < len(addresses):
        if to_send and dram.read_cmd.can_push():
            dram.read_cmd.push(DRAMCommand(kind="read", addr=to_send.pop(0)))
        while dram.read_rsp.can_pop():
            responses.append(dram.read_rsp.pop())
        sim.step()
        if sim.cycle > max_cycles:
            raise AssertionError("DRAM read sequence did not complete")
    return responses


class TestBasicReadsWrites:
    def test_preload_and_read_back(self):
        sim, dram = make_dram()
        dram.preload(0, np.arange(16))
        responses = read_n_words(sim, dram, range(16))
        assert [r.data for r in responses] == list(range(16))
        assert dram.words_read == 16
        assert dram.bytes_read == 64

    def test_responses_preserve_order_and_tags(self):
        sim, dram = make_dram()
        dram.preload(0, np.arange(32))
        to_send = [DRAMCommand(kind="read", addr=a, tag=a % 3) for a in (5, 1, 9)]
        responses = []
        while len(responses) < 3:
            if to_send and dram.read_cmd.can_push():
                dram.read_cmd.push(to_send.pop(0))
            while dram.read_rsp.can_pop():
                responses.append(dram.read_rsp.pop())
            sim.step()
        assert [r.addr for r in responses] == [5, 1, 9]
        assert [r.tag for r in responses] == [2, 1, 0]

    def test_write_updates_storage_and_counters(self):
        sim, dram = make_dram()
        dram.write_cmd.push(DRAMCommand(kind="write", addr=7, data=3.5))
        for _ in range(10):
            sim.step()
        assert dram.storage[7] == 3.5
        assert dram.words_written == 1
        assert dram.writes_completed == 1

    def test_out_of_range_read_raises(self):
        sim, dram = make_dram()
        dram.read_cmd.push(DRAMCommand(kind="read", addr=5000))
        with pytest.raises(IndexError):
            for _ in range(10):
                sim.step()

    def test_out_of_range_preload_rejected(self):
        _, dram = make_dram()
        with pytest.raises(ValueError):
            dram.preload(1020, np.arange(16))

    def test_snapshot(self):
        _, dram = make_dram()
        dram.preload(4, np.array([1.0, 2.0, 3.0]))
        assert list(dram.snapshot(4, 3)) == [1.0, 2.0, 3.0]
        with pytest.raises(ValueError):
            dram.snapshot(1023, 5)

    def test_invalid_command_kind_rejected(self):
        with pytest.raises(ValueError):
            DRAMCommand(kind="refresh", addr=0)


class TestTimingModel:
    def test_sequential_stream_is_one_word_per_cycle(self):
        sim, dram = make_dram()
        dram.preload(0, np.arange(64))
        read_n_words(sim, dram, range(64))
        # one access is "random" (the first), the rest continue the burst
        assert dram.sequential_accesses == 63
        assert dram.random_accesses == 1

    def test_strided_access_counts_as_random(self):
        sim, dram = make_dram()
        dram.preload(0, np.arange(512))
        read_n_words(sim, dram, range(0, 512, 7))
        assert dram.sequential_accesses == 0
        assert dram.random_accesses == len(range(0, 512, 7))

    def test_random_penalty_slows_reads_down(self):
        addresses = list(range(0, 500, 7))
        sim_fast, dram_fast = make_dram(timing=DRAMTiming(random_access_cycles=1))
        dram_fast.preload(0, np.arange(512))
        read_n_words(sim_fast, dram_fast, addresses)

        sim_slow, dram_slow = make_dram(timing=DRAMTiming(random_access_cycles=4))
        dram_slow.preload(0, np.arange(512))
        read_n_words(sim_slow, dram_slow, addresses)
        assert sim_slow.cycle > sim_fast.cycle * 2

    def test_row_miss_penalty_counted(self):
        timing = DRAMTiming(row_miss_penalty=10, row_words=16)
        sim, dram = make_dram(timing=timing)
        dram.preload(0, np.arange(128))
        read_n_words(sim, dram, [0, 64, 3, 100])
        assert dram.row_misses >= 3

    def test_sequential_immune_to_row_penalty_between_words(self):
        timing = DRAMTiming(row_miss_penalty=10, row_words=16)
        sim, dram = make_dram(timing=timing)
        dram.preload(0, np.arange(64))
        read_n_words(sim, dram, range(64))
        # only the initial access pays the activation
        assert dram.row_misses == 1

    def test_timing_validation(self):
        with pytest.raises(ValueError):
            DRAMTiming(stream_word_cycles=0)
        with pytest.raises(ValueError):
            DRAMTiming(row_miss_penalty=-1)


class TestSharedBus:
    def test_shared_bus_serialises_reads_and_writes(self):
        # With a shared bus, N reads + N writes take ~2N cycles; with a split
        # bus they overlap and take ~N.
        def run(shared):
            sim, dram = make_dram(shared_bus=shared)
            dram.preload(0, np.arange(256))
            reads = list(range(100))
            writes = list(range(100, 200))
            done_reads = 0
            while done_reads < 100 or dram.writes_completed < 100:
                if reads and dram.read_cmd.can_push():
                    dram.read_cmd.push(DRAMCommand(kind="read", addr=reads.pop(0)))
                if writes and dram.write_cmd.can_push():
                    dram.write_cmd.push(DRAMCommand(kind="write", addr=writes.pop(0), data=1.0))
                while dram.read_rsp.can_pop():
                    dram.read_rsp.pop()
                    done_reads += 1
                sim.step()
                assert sim.cycle < 5000
            return sim.cycle

        # the split bus should be markedly faster
        assert run(shared=True) > run(shared=False) * 1.5

    def test_finished_reflects_inflight_work(self):
        sim, dram = make_dram()
        assert dram.finished()
        dram.read_cmd.push(DRAMCommand(kind="read", addr=0))
        sim.step(2)  # one cycle to commit the command, one for the DRAM to accept it
        assert not dram.finished()
        for _ in range(12):
            sim.step()
        dram.read_rsp.drain()
        assert dram.finished()

    def test_reset_clears_state(self):
        sim, dram = make_dram()
        dram.preload(0, np.arange(8))
        read_n_words(sim, dram, range(8))
        dram.reset()
        assert dram.words_read == 0
        assert np.all(dram.storage == 0)
