"""Cross-validation of the analytic backend against the cycle-accurate simulator.

The acceptance bar: cycle predictions within ``ANALYTIC_TOLERANCE`` (5%) of
the simulator on the paper's Figure 2 / Table I configurations, and DRAM
traffic / operation counts matching exactly.  The 1024x1024 Table I rows are
too large to simulate in the test-suite, so the same stencil/boundary
structure is validated on a 96x96 proxy (the model's terms — window reach,
static prefetch, per-instance overheads — scale with the plan, not with a
fitted constant, so agreement on the proxy covers the scaled rows).
"""

import pytest

from repro.core.boundary import BoundarySpec
from repro.core.grid import GridSpec
from repro.core.partition import StreamBufferMode
from repro.core.stencil import StencilShape
from repro.memory.dram import DRAMTiming
from repro.pipeline import (
    ANALYTIC_TOLERANCE,
    EvaluationRequest,
    ReferenceBand,
    StencilProblem,
    compile,
    evaluate,
    validate_prediction,
)


def assert_agreement(problem, system, iterations, timing=None, write_through=True):
    """Analytic vs simulated: cycles within tolerance, counts exact."""
    design = compile(problem)
    request = EvaluationRequest(
        system=system, iterations=iterations, dram_timing=timing, write_through=write_through
    )
    simulated = evaluate(design, backend="simulate", request=request)
    predicted = evaluate(design, backend="analytic", request=request)
    error = abs(predicted.cycles - simulated.cycles) / simulated.cycles
    assert error <= ANALYTIC_TOLERANCE, (
        f"{problem.name}/{system}: predicted {predicted.cycles} vs "
        f"simulated {simulated.cycles} ({error:.2%})"
    )
    assert predicted.dram_words_read == simulated.dram_words_read
    assert predicted.dram_words_written == simulated.dram_words_written
    assert predicted.dram_bytes == simulated.dram_bytes
    assert predicted.operations == simulated.operations
    return error


def asymmetric_problem() -> StencilProblem:
    return StencilProblem(
        grid=GridSpec(shape=(20, 24), word_bytes=4),
        stencil=StencilShape.asymmetric_2d(),
        boundary=BoundarySpec.paper_2d(),
        name="asym-20x24",
    )


class TestFigure2Configurations:
    """The paper's validation case at the paper's full instance count."""

    def test_smache_full_figure2_run(self):
        assert_agreement(StencilProblem.paper_example(), "smache", iterations=100)

    def test_baseline_figure2_scale(self):
        assert_agreement(StencilProblem.paper_example(), "baseline", iterations=30)

    @pytest.mark.parametrize("iterations", [1, 2, 5])
    def test_smache_short_runs(self, iterations):
        assert_agreement(StencilProblem.paper_example(), "smache", iterations=iterations)

    @pytest.mark.parametrize("iterations", [1, 2, 5])
    def test_baseline_short_runs(self, iterations):
        assert_agreement(StencilProblem.paper_example(), "baseline", iterations=iterations)


class TestTable1Configurations:
    """The four Table I rows: both mapping modes, small grid plus a scaled proxy."""

    @pytest.mark.parametrize(
        "mode", [StreamBufferMode.REGISTER_ONLY, StreamBufferMode.HYBRID]
    )
    def test_11x11_both_modes(self, mode):
        assert_agreement(StencilProblem.paper_example(mode=mode), "smache", iterations=10)

    @pytest.mark.parametrize(
        "mode", [StreamBufferMode.REGISTER_ONLY, StreamBufferMode.HYBRID]
    )
    def test_large_grid_proxy_both_modes(self, mode):
        # stands in for the 1024x1024 Table I rows (same structure, feasible to simulate)
        assert_agreement(
            StencilProblem.paper_example(96, 96, mode=mode), "smache", iterations=2
        )


class TestOtherShapes:
    def test_asymmetric_stencil_smache(self):
        assert_agreement(asymmetric_problem(), "smache", iterations=5)

    def test_asymmetric_stencil_baseline(self):
        assert_agreement(asymmetric_problem(), "baseline", iterations=3)

    def test_constrained_reach_plan(self):
        assert_agreement(
            StencilProblem.paper_example(max_stream_reach=4), "smache", iterations=5
        )

    def test_dram_penalty_timing(self):
        timing = DRAMTiming(random_access_cycles=5)
        assert_agreement(StencilProblem.paper_example(), "smache", 5, timing=timing)
        assert_agreement(StencilProblem.paper_example(), "baseline", 3, timing=timing)

    def test_high_read_latency_timing(self):
        timing = DRAMTiming(read_latency=8)
        assert_agreement(StencilProblem.paper_example(), "smache", 4, timing=timing)

    def test_write_through_disabled(self):
        assert_agreement(
            StencilProblem.paper_example(), "smache", iterations=4, write_through=False
        )


class TestValidationReport:
    def test_validate_prediction_passes_on_paper_case(self):
        design = compile(StencilProblem.paper_example())
        report = validate_prediction(design, system="smache", iterations=10)
        assert report.ok
        assert report.worst_error <= ANALYTIC_TOLERANCE
        assert set(report.errors) == {
            "cycles", "dram_words_read", "dram_words_written", "operations",
        }

    def test_validate_prediction_baseline(self):
        design = compile(StencilProblem.paper_example(7, 9))
        report = validate_prediction(design, system="baseline", iterations=4)
        assert report.ok


class TestReferenceBand:
    def test_contains_inside_band(self):
        band = ReferenceBand(100.0, -0.05, 0.05)
        assert band.contains(104.0)
        assert not band.contains(106.0)
        assert not band.contains(94.0)

    def test_exact_band(self):
        band = ReferenceBand(42.0, 0.0, 0.0)
        assert band.contains(42.0)
        assert not band.contains(43.0)

    def test_zero_reference(self):
        band = ReferenceBand(0.0)
        assert band.contains(0.0)
        assert not band.contains(1.0)

    def test_signed_error(self):
        band = ReferenceBand(200.0)
        assert band.error(210.0) == pytest.approx(0.05)
        assert band.error(190.0) == pytest.approx(-0.05)


class TestPredictionEdgeCases:
    def test_zero_iterations(self):
        design = compile(StencilProblem.paper_example(7, 9))
        predicted = evaluate(design, backend="analytic", iterations=0)
        assert predicted.cycles == 0
        assert predicted.dram_bytes == 0
        assert predicted.operations == 0

    def test_unknown_system_rejected(self):
        from repro.pipeline.analytic import predict_performance

        design = compile(StencilProblem.paper_example(7, 9))
        with pytest.raises(ValueError):
            predict_performance(design, system="tpu")
