"""The vectorized pricing engine must be bitwise-equal to the scalar model.

``repro.pipeline.analytic`` stays the reference (the same contract as
``reference_step_scalar``): for every point of a batch, the engine's cycles,
traffic, operation counts, ``extra`` detail (values *and* Python types — the
canonical campaign JSON serialises them) and the ``prediction`` artifact must
equal the scalar ``AnalyticBackend`` output exactly.  Alongside the parity
sweep live the structural guarantees: input-order preservation under
signature regrouping, the grouping edge cases, and the plan-cache batch
counting contract (one miss + N−1 hits for a shared design).
"""

import random
import threading
from dataclasses import replace

import pytest

from repro.core.boundary import BoundarySpec
from repro.core.grid import GridSpec
from repro.core.partition import StreamBufferMode
from repro.core.stencil import StencilShape
from repro.memory.dram import DRAMTiming
from repro.pipeline import (
    EvaluationRequest,
    PlanCache,
    StencilProblem,
    batch_evaluate,
    batching_enabled,
    compile,
    compile_batch,
    evaluate,
)
from repro.pipeline.analytic_batch import AnalyticBatchEngine
from repro.pipeline.backends import AnalyticBackend
from repro.reference.kernels import SumKernel, WeightedKernel

#: Every batch result field that must match the scalar path bit for bit.
METRIC_FIELDS = (
    "backend",
    "system",
    "iterations",
    "cycles",
    "dram_words_read",
    "dram_words_written",
    "dram_bytes",
    "operations",
)


@pytest.fixture()
def engine():
    return AnalyticBatchEngine()


@pytest.fixture(scope="module")
def scalar():
    backend = AnalyticBackend()

    def price(design, request):
        return backend.evaluate(design, request)

    return price


def assert_bitwise_equal(scalar_result, batch_result):
    """Scalar vs vectorized: every metric, every detail value, same types."""
    for name in METRIC_FIELDS:
        assert getattr(batch_result, name) == getattr(scalar_result, name), name
    assert batch_result.extra == scalar_result.extra
    for key, value in scalar_result.extra.items():
        assert type(batch_result.extra[key]) is type(value), key
    assert (
        batch_result.artifacts["prediction"] == scalar_result.artifacts["prediction"]
    )


def price_and_compare(engine, scalar, items):
    results = engine.price(items)
    assert len(results) == len(items)
    for (design, request), result in zip(items, results):
        assert result.design is design
        assert_bitwise_equal(scalar(design, request), result)
    return results


class TestSweepAxesParity:
    """vectorized == scalar across grid × stencil × partition × reach ×
    timing × boundary × system × write-through × instance-count axes."""

    @pytest.mark.parametrize(
        "grid_shape", [(7, 9), (11, 11), (20, 24), (96, 96)]
    )
    def test_grid_sizes(self, engine, scalar, grid_shape):
        design = compile(StencilProblem.paper_example(*grid_shape))
        items = [
            (design, EvaluationRequest(system=system, iterations=iterations))
            for system in ("smache", "baseline")
            for iterations in (0, 1, 2, 3, 4, 5, 100)
        ]
        price_and_compare(engine, scalar, items)

    @pytest.mark.parametrize(
        "stencil",
        [
            StencilShape.four_point_2d(),
            StencilShape.five_point_2d(),
            StencilShape.asymmetric_2d(),
            StencilShape.moore(2),
        ],
    )
    def test_stencils(self, engine, scalar, stencil):
        problem = StencilProblem(
            grid=GridSpec(shape=(16, 12), word_bytes=4),
            stencil=stencil,
            boundary=BoundarySpec.paper_2d(),
            name=f"stencil-{stencil.n_points}",
        )
        design = compile(problem)
        items = [
            (design, EvaluationRequest(system=system, iterations=3))
            for system in ("smache", "baseline")
        ]
        price_and_compare(engine, scalar, items)

    @pytest.mark.parametrize(
        "boundary",
        [BoundarySpec.paper_2d(), BoundarySpec.all_open(2), BoundarySpec.all_circular(2)],
    )
    def test_boundary_modes(self, engine, scalar, boundary):
        problem = StencilProblem.paper_example(13, 11)
        design = compile(replace(problem, boundary=boundary))
        items = [
            (design, EvaluationRequest(system=system, iterations=iterations))
            for system in ("smache", "baseline")
            for iterations in (1, 4)
        ]
        price_and_compare(engine, scalar, items)

    @pytest.mark.parametrize(
        "mode", [StreamBufferMode.HYBRID, StreamBufferMode.REGISTER_ONLY]
    )
    @pytest.mark.parametrize("reach", [0, 4, None])
    def test_partitions_and_reaches(self, engine, scalar, mode, reach):
        design = compile(
            StencilProblem.paper_example(11, 11, mode=mode, max_stream_reach=reach)
        )
        items = [
            (design, EvaluationRequest(system=system, iterations=5, write_through=wt))
            for system in ("smache", "baseline")
            for wt in (True, False)
        ]
        price_and_compare(engine, scalar, items)

    @pytest.mark.parametrize(
        "timing",
        [
            None,
            DRAMTiming(random_access_cycles=5),
            DRAMTiming(read_latency=8),
            # Latency so large the response window cannot hide it: the
            # fractional word_period exercises the float truncation path.
            DRAMTiming(read_latency=300),
            DRAMTiming(stream_word_cycles=2, random_access_cycles=9, read_latency=40),
        ],
    )
    def test_dram_timings(self, engine, scalar, timing):
        design = compile(StencilProblem.paper_example(11, 11))
        items = [
            (design, EvaluationRequest(system=system, iterations=iterations, dram_timing=timing))
            for system in ("smache", "baseline")
            for iterations in (1, 3, 7)
        ]
        price_and_compare(engine, scalar, items)

    def test_kernel_overrides(self, engine, scalar):
        design = compile(StencilProblem.paper_example(11, 11))
        items = [
            (design, EvaluationRequest(system=system, iterations=3, kernel=kernel))
            for system in ("smache", "baseline")
            for kernel in (SumKernel(), WeightedKernel.jacobi_2d())
        ]
        price_and_compare(engine, scalar, items)

    def test_broad_shuffled_cross_product(self, engine, scalar):
        """One big mixed batch over every axis at once, in random order."""
        items = []
        for rows, cols in [(7, 9), (11, 11), (16, 12)]:
            for reach in (0, 4, None):
                design = compile(
                    StencilProblem.paper_example(rows, cols, max_stream_reach=reach)
                )
                for system in ("smache", "baseline"):
                    for iterations in (0, 2, 5):
                        for timing in (None, DRAMTiming(random_access_cycles=5)):
                            items.append(
                                (
                                    design,
                                    EvaluationRequest(
                                        system=system,
                                        iterations=iterations,
                                        dram_timing=timing,
                                        write_through=(iterations % 2 == 0),
                                    ),
                                )
                            )
        random.Random(42).shuffle(items)
        price_and_compare(engine, scalar, items)


class TestGroupingEdgeCases:
    def test_singleton_batch(self, engine, scalar):
        design = compile(StencilProblem.paper_example(7, 9))
        price_and_compare(engine, scalar, [(design, EvaluationRequest(iterations=4))])

    def test_all_identical_batch(self, engine, scalar):
        design = compile(StencilProblem.paper_example(7, 9))
        request = EvaluationRequest(iterations=3)
        results = price_and_compare(engine, scalar, [(design, request)] * 8)
        first = results[0]
        assert all(r.cycles == first.cycles for r in results)

    def test_mixed_smache_baseline_batch(self, engine, scalar):
        design = compile(StencilProblem.paper_example(11, 11))
        items = [
            (design, EvaluationRequest(system="smache", iterations=2)),
            (design, EvaluationRequest(system="baseline", iterations=2)),
            (design, EvaluationRequest(system="smache", iterations=5)),
            (design, EvaluationRequest(system="baseline", iterations=5)),
        ]
        price_and_compare(engine, scalar, items)

    def test_singleton_groups_within_a_batch(self, engine, scalar):
        """Designs with different static-buffer counts split into groups of 1."""
        designs = [
            compile(StencilProblem.paper_example(11, 11)),
            compile(StencilProblem.paper_example(11, 11, max_stream_reach=0)),
            compile(
                StencilProblem.paper_example(
                    20, 24, stencil=StencilShape.asymmetric_2d()
                )
            ),
        ]
        items = [(d, EvaluationRequest(iterations=3)) for d in designs]
        price_and_compare(engine, scalar, items)

    def test_input_order_preserved_after_regrouping(self, engine, scalar):
        """Shuffled mixed batch: result i must answer item i exactly."""
        designs = [
            compile(StencilProblem.paper_example(rows, cols))
            for rows, cols in [(7, 9), (11, 11), (16, 12)]
        ]
        items = []
        for design in designs:
            for system in ("smache", "baseline"):
                for iterations in (1, 2, 6):
                    items.append(
                        (design, EvaluationRequest(system=system, iterations=iterations))
                    )
        random.Random(7).shuffle(items)
        results = price_and_compare(engine, scalar, items)
        for (design, request), result in zip(items, results):
            assert result.design is design
            assert result.system == request.system
            assert result.iterations == request.iterations

    def test_without_artifacts(self, engine):
        design = compile(StencilProblem.paper_example(7, 9))
        request = EvaluationRequest(iterations=2)
        slim, full = engine.price([(design, request)] * 2, with_artifacts=False)
        assert slim.artifacts == {} and full.artifacts == {}
        with_pred = engine.price([(design, request)])[0]
        assert slim.cycles == with_pred.cycles
        assert "prediction" in with_pred.artifacts

    def test_knob_cache_is_reused_across_calls(self, scalar):
        engine = AnalyticBatchEngine()
        design = compile(StencilProblem.paper_example(11, 11))
        engine.price([(design, EvaluationRequest(iterations=1))] * 4)
        info = engine.cache_info()
        assert info.misses == 1 and info.hits == 3
        # A second call under different knobs re-uses the packed constants.
        engine.price([(design, EvaluationRequest(iterations=9))] * 2)
        info = engine.cache_info()
        assert info.misses == 1 and info.hits == 5


class TestPlanCacheBatchCounting:
    """Satellite: N points sharing a design = 1 miss + N−1 hits, not N misses."""

    def test_shared_design_counts_one_miss(self):
        cache = PlanCache()
        problem = StencilProblem.paper_example(9, 9)
        designs = compile_batch([problem] * 5, cache=cache)
        info = cache.cache_info()
        assert info.misses == 1
        assert info.hits == 4
        assert all(d is designs[0] for d in designs)

    def test_mixed_batch_counts_per_distinct_design(self):
        cache = PlanCache()
        a = StencilProblem.paper_example(9, 9)
        b = StencilProblem.paper_example(11, 11)
        compile_batch([a, a, b, b, a], cache=cache)
        info = cache.cache_info()
        assert info.misses == 2
        assert info.hits == 3

    def test_warm_cache_batch_is_all_hits(self):
        cache = PlanCache()
        problem = StencilProblem.paper_example(9, 9)
        compile_batch([problem], cache=cache)
        compile_batch([problem] * 3, cache=cache)
        info = cache.cache_info()
        assert info.misses == 1
        assert info.hits == 3

    def test_label_variants_share_the_compiled_artifacts(self):
        cache = PlanCache()
        base = StencilProblem.paper_example(9, 9)
        renamed = replace(base, name="renamed")
        designs = compile_batch([base, renamed], cache=cache)
        assert cache.cache_info().misses == 1
        assert designs[0].plan is designs[1].plan
        assert designs[1].problem.name == "renamed"

    def test_precompiled_designs_pass_through(self):
        cache = PlanCache()
        design = compile(StencilProblem.paper_example(9, 9))
        out = compile_batch([design], cache=cache)
        assert out[0] is design
        assert cache.cache_info().misses == 0

    def test_get_or_compile_batch_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            PlanCache().get_or_compile_batch([("k",)], [])


class TestBatchEvaluateFastPath:
    def problems(self):
        return [
            StencilProblem.paper_example(rows, cols, max_stream_reach=reach)
            for rows, cols in [(7, 9), (11, 11)]
            for reach in (0, None)
        ]

    def test_matches_scalar_loop_exactly(self, monkeypatch):
        problems = self.problems()
        monkeypatch.setenv("REPRO_ANALYTIC_BATCH", "0")
        assert not batching_enabled()
        scalar_results = batch_evaluate(problems, iterations=3)
        monkeypatch.setenv("REPRO_ANALYTIC_BATCH", "1")
        assert batching_enabled()
        fast_results = batch_evaluate(problems, iterations=3)
        for scalar_result, fast_result in zip(scalar_results, fast_results):
            assert_bitwise_equal(scalar_result, fast_result)

    def test_preserves_input_order_when_shuffled(self):
        problems = self.problems() * 2
        random.Random(3).shuffle(problems)
        results = batch_evaluate(problems, iterations=2)
        assert len(results) == len(problems)
        for problem, result in zip(problems, results):
            assert result.design.problem.cache_key() == problem.cache_key()

    def test_session_engine_is_used(self):
        from repro.api import Workbench

        workbench = Workbench()
        problems = self.problems()
        workbench.evaluate_batch(problems, iterations=2)
        info = workbench.analytic_engine.cache_info()
        assert info.misses == len(set(p.cache_key() for p in problems))
        # A warm re-price of the same problem list hits the packed-session
        # cache: neither the knob cache nor the plan cache is consulted.
        warm = workbench.evaluate_batch(problems, iterations=7)
        again = workbench.analytic_engine.cache_info()
        assert again.misses == info.misses and again.hits == info.hits
        for problem, result in zip(problems, warm):
            reference = evaluate(problem, backend="analytic", iterations=7)
            assert_bitwise_equal(reference, result)

    def test_single_problem_stays_on_the_scalar_path(self):
        problem = StencilProblem.paper_example(7, 9)
        result = batch_evaluate([problem], iterations=2)[0]
        reference = evaluate(problem, backend="analytic", iterations=2)
        assert_bitwise_equal(reference, result)


class TestEngineCacheCounters:
    """Satellites: empty-batch guards, the cache_info() session/fold
    counters, and thread-safety of the shared engine caches."""

    def test_empty_batches_return_empty(self, engine):
        assert engine.price([]) == []
        assert engine.price([], with_artifacts=False) == []
        assert engine.price_batch([], EvaluationRequest(iterations=3)) == []
        info = engine.cache_info()
        assert info.session_misses == 0 and info.fold_misses == 0
        assert info.misses == 0

    def test_session_and_fold_counters(self):
        engine = AnalyticBatchEngine()
        cache = PlanCache()
        problems = [
            StencilProblem.paper_example(9, 9),
            StencilProblem.paper_example(11, 11),
        ]
        engine.price_batch(problems, EvaluationRequest(iterations=2), cache=cache)
        info = engine.cache_info()
        assert (info.session_hits, info.session_misses) == (0, 1)
        assert (info.fold_hits, info.fold_misses) == (0, 1)
        assert info.session_currsize == 1

        # Same problem objects, same knobs: session hit AND fold hit.
        engine.price_batch(problems, EvaluationRequest(iterations=2), cache=cache)
        info = engine.cache_info()
        assert (info.session_hits, info.fold_hits) == (1, 1)

        # Same problem objects, new knobs: session hit, fresh fold.
        engine.price_batch(problems, EvaluationRequest(iterations=5), cache=cache)
        info = engine.cache_info()
        assert (info.session_hits, info.session_misses) == (2, 1)
        assert (info.fold_hits, info.fold_misses) == (1, 2)
        assert info.session_hit_rate == pytest.approx(2 / 3)
        assert info.fold_hit_rate == pytest.approx(1 / 3)

    def test_session_evictions_are_counted(self):
        engine = AnalyticBatchEngine(max_sessions=2)
        cache = PlanCache()
        lists = [[StencilProblem.paper_example(9 + i, 9)] for i in range(3)]
        for problems in lists:
            engine.price_batch(problems, EvaluationRequest(iterations=1), cache=cache)
        info = engine.cache_info()
        assert info.session_misses == 3
        assert info.session_evictions == 1
        assert info.session_currsize == 2 == info.session_maxsize
        # The evicted (oldest) list misses again on re-price.
        engine.price_batch(lists[0], EvaluationRequest(iterations=1), cache=cache)
        assert engine.cache_info().session_misses == 4

    def test_clear_resets_every_counter(self):
        engine = AnalyticBatchEngine()
        cache = PlanCache()
        problems = [StencilProblem.paper_example(9, 9)]
        engine.price_batch(problems, EvaluationRequest(iterations=1), cache=cache)
        engine.price_batch(problems, EvaluationRequest(iterations=1), cache=cache)
        engine.clear()
        info = engine.cache_info()
        assert (info.session_hits, info.session_misses, info.session_evictions) == (0, 0, 0)
        assert (info.fold_hits, info.fold_misses) == (0, 0)
        assert info.session_currsize == 0

    def test_concurrent_price_batch_is_safe_and_exact(self, scalar):
        """Several threads hammer one engine on shared problem lists; every
        result must still be bitwise-equal to the scalar reference."""
        engine = AnalyticBatchEngine()
        cache = PlanCache()
        problems = [
            StencilProblem.paper_example(rows, cols)
            for rows, cols in [(7, 9), (11, 11), (16, 12)]
        ]
        requests = [
            EvaluationRequest(system=system, iterations=iterations)
            for system in ("smache", "baseline")
            for iterations in (1, 3, 5)
        ]
        expected = [
            [scalar(compile(problem), request) for problem in problems]
            for request in requests
        ]
        errors = []
        collected = {}

        def hammer(tid):
            try:
                out = []
                for _ in range(10):
                    for request in requests:
                        out.append(
                            engine.price_batch(problems, request, cache=cache)
                        )
                collected[tid] = out
            except Exception as exc:  # noqa: BLE001 — reraised below
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert len(collected) == 4
        for out in collected.values():
            for call_index, results in enumerate(out):
                references = expected[call_index % len(requests)]
                for reference, result in zip(references, results):
                    assert_bitwise_equal(reference, result)
        info = engine.cache_info()
        # One packed session total, shared by every thread.
        assert info.session_currsize == 1
        assert info.session_hits + info.session_misses == 4 * 10 * len(requests)
        assert info.session_evictions == 0
