"""Tests for the pipeline backend registry and the evaluate facade."""

import numpy as np
import pytest

from repro.pipeline import (
    Backend,
    EvaluationRequest,
    StencilProblem,
    available_backends,
    compile,
    evaluate,
    evaluate_batch,
    get_backend,
    register_backend,
)
from repro.pipeline.backends import _BACKENDS


@pytest.fixture(scope="module")
def small_design():
    return compile(StencilProblem.paper_example(7, 9))


class TestRegistry:
    def test_builtin_backends_present(self):
        names = available_backends()
        for expected in ("simulate", "reference", "analytic", "cost", "hdl"):
            assert expected in names

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            get_backend("quantum")

    def test_custom_backend_registration(self, small_design):
        class EchoBackend(Backend):
            name = "echo"

            def evaluate(self, design, request):
                from repro.pipeline.backends import EvaluationResult

                return EvaluationResult(backend=self.name, system=request.system, design=design)

        register_backend("echo", EchoBackend)
        try:
            result = evaluate(small_design, backend="echo")
            assert result.backend == "echo"
        finally:
            _BACKENDS.pop("echo", None)


class TestEvaluationRequest:
    def test_rejects_unknown_system(self):
        with pytest.raises(ValueError):
            EvaluationRequest(system="gpu")

    def test_rejects_negative_iterations(self):
        with pytest.raises(ValueError):
            EvaluationRequest(iterations=-1)

    def test_input_grid_overrides_test_pattern(self, small_design):
        grid = np.ones(small_design.problem.grid.shape)
        request = EvaluationRequest(input_grid=grid)
        assert np.array_equal(request.resolve_input(small_design), grid)


class TestBackendsAgree:
    def test_simulate_matches_reference_output(self, small_design):
        request = EvaluationRequest(iterations=3)
        simulated = evaluate(small_design, backend="simulate", request=request)
        golden = evaluate(small_design, backend="reference", request=request)
        assert np.allclose(simulated.output, golden.output)

    def test_baseline_simulation_matches_reference_output(self, small_design):
        request = EvaluationRequest(iterations=3, system="baseline")
        simulated = evaluate(small_design, backend="simulate", request=request)
        golden = evaluate(small_design, backend="reference", request=request)
        assert np.allclose(simulated.output, golden.output)

    def test_analytic_produces_timing_but_no_output(self, small_design):
        result = evaluate(small_design, backend="analytic", iterations=3)
        assert result.cycles > 0
        assert result.dram_bytes > 0
        assert result.output is None

    def test_cost_backend_reports_design_economics(self, small_design):
        result = evaluate(small_design, backend="cost")
        assert result.extra["total_bits"] == small_design.cost.total_bits
        assert result.artifacts["synthesis"] is small_design.synthesis
        assert result.cycles is None

    def test_hdl_backend_generates_project(self, small_design):
        result = evaluate(small_design, backend="hdl")
        project = result.artifacts["project"]
        assert "smache_top.v" in project.files
        assert result.extra["n_files"] >= 3


class TestFacade:
    def test_evaluate_accepts_config_and_problem(self, small_config):
        by_config = evaluate(small_config, backend="analytic", iterations=2)
        by_problem = evaluate(
            StencilProblem.from_config(small_config), backend="analytic", iterations=2
        )
        assert by_config.cycles == by_problem.cycles

    def test_request_overrides_merge(self, small_design):
        base = EvaluationRequest(iterations=1)
        result = evaluate(
            small_design, backend="analytic", request=base, iterations=4, system="baseline"
        )
        assert result.iterations == 4
        assert result.system == "baseline"

    def test_evaluate_batch_defaults_to_analytic(self):
        problems = [StencilProblem.paper_example(7, 9), StencilProblem.paper_example(9, 11)]
        results = evaluate_batch(problems, iterations=2)
        assert [r.backend for r in results] == ["analytic", "analytic"]
        assert all(r.cycles > 0 for r in results)

    def test_execution_time_uses_design_fmax(self, small_design):
        result = evaluate(small_design, backend="analytic", iterations=1)
        expected = result.cycles / small_design.fmax_mhz
        assert result.execution_time_us() == pytest.approx(expected)

    def test_execution_time_requires_cycles(self, small_design):
        result = evaluate(small_design, backend="reference", iterations=1)
        with pytest.raises(ValueError):
            result.execution_time_us()

    @pytest.mark.parametrize("frequency", [0, -100.0])
    def test_nonpositive_frequency_rejected(self, small_design, frequency):
        """Zero/negative clocks raise a clear ValueError, never a divide-by-zero."""
        result = evaluate(small_design, backend="analytic", iterations=1)
        with pytest.raises(ValueError, match="must be positive"):
            result.execution_time_us(frequency)
        with pytest.raises(ValueError, match="must be positive"):
            result.mops(frequency)

    def test_nonpositive_design_fmax_rejected(self, small_design):
        import dataclasses

        result = evaluate(small_design, backend="analytic", iterations=1)
        broken_synthesis = dataclasses.replace(small_design.synthesis, fmax_mhz=0.0)
        broken = dataclasses.replace(small_design, synthesis=broken_synthesis)
        result = dataclasses.replace(result, design=broken)
        with pytest.raises(ValueError, match="Fmax must be positive"):
            result.execution_time_us()

    def test_cost_backend_reports_planner_comparison(self, small_design):
        result = evaluate(small_design, backend="cost")
        extra = result.extra
        assert extra["plan_elements"] <= extra["stream_only_elements"]
        assert extra["plan_elements"] == small_design.plan.total_cost_elements
