"""Tests for repro.pipeline: StencilProblem, compile() and the plan cache."""

import pytest

from repro.core.config import SmacheConfig
from repro.core.partition import StreamBufferMode
from repro.pipeline import StencilProblem, compile
from repro.pipeline.cache import PlanCache


@pytest.fixture
def paper_problem() -> StencilProblem:
    return StencilProblem.paper_example()


class TestStencilProblem:
    def test_from_config_round_trips(self, paper_config):
        problem = StencilProblem.from_config(paper_config)
        back = problem.to_config()
        assert back.grid == paper_config.grid
        assert back.stencil == paper_config.stencil
        assert back.boundary == paper_config.boundary
        assert back.mode == paper_config.mode
        assert back.name == paper_config.name

    def test_default_kernel_matches_stencil_points(self, paper_problem):
        kernel = paper_problem.effective_kernel
        assert kernel.name == "average"
        assert kernel.expected_points == paper_problem.stencil.n_points

    def test_cache_key_is_hashable_and_stable(self, paper_problem):
        assert hash(paper_problem.cache_key()) == hash(StencilProblem.paper_example().cache_key())

    def test_cache_key_distinguishes_modes(self, paper_problem):
        other = StencilProblem.paper_example(mode=StreamBufferMode.REGISTER_ONLY)
        assert paper_problem.cache_key() != other.cache_key()

    def test_describe_names_the_kernel(self, paper_problem):
        assert "average" in paper_problem.describe()

    def test_problem_with_dict_backed_kernel_is_hashable(self):
        # Regression: WeightedKernel carries a dict field; the problem hash
        # must not include it (equality still does).
        from repro.reference.kernels import WeightedKernel

        problem = StencilProblem.paper_example(kernel=WeightedKernel.diffusion_2d(nu=0.2))
        assert isinstance(hash(problem), int)
        assert problem in {problem}
        assert hash(problem.cache_key()) == hash(
            StencilProblem.paper_example(kernel=WeightedKernel.diffusion_2d(nu=0.2)).cache_key()
        )


class TestCompile:
    def test_compile_matches_legacy_config_path(self, paper_config):
        design = compile(StencilProblem.from_config(paper_config), cache=None)
        legacy_plan = paper_config.plan()
        assert design.plan == legacy_plan
        assert design.partition == paper_config.partition(legacy_plan)
        assert design.cost == paper_config.cost_estimate(legacy_plan)

    def test_compile_carries_range_structure(self, paper_problem):
        design = compile(paper_problem, cache=None)
        assert design.n_cases == 9  # the paper's nine stencil cases
        assert design.n_ranges == len(design.ranges)
        assert design.ranges[0].start == 0

    def test_compile_accepts_plain_config(self, paper_config):
        design = compile(paper_config, cache=None)
        assert design.config.grid == paper_config.grid

    def test_describe_mentions_cases_and_cost(self, paper_problem):
        text = compile(paper_problem, cache=None).describe()
        assert "cases" in text and "memory cost" in text


class TestPlanCache:
    def test_second_compile_hits_the_cache(self, paper_problem):
        cache = PlanCache()
        first = compile(paper_problem, cache=cache)
        second = compile(StencilProblem.paper_example(), cache=cache)
        assert first is second
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_distinct_problems_occupy_distinct_entries(self):
        cache = PlanCache()
        compile(StencilProblem.paper_example(7, 9), cache=cache)
        compile(StencilProblem.paper_example(9, 11), cache=cache)
        assert len(cache) == 2

    def test_lru_eviction(self):
        cache = PlanCache(max_entries=2)
        a = StencilProblem.paper_example(7, 9)
        b = StencilProblem.paper_example(9, 11)
        c = StencilProblem.paper_example(11, 11)
        compile(a, cache=cache)
        compile(b, cache=cache)
        compile(c, cache=cache)  # evicts a
        assert len(cache) == 2
        assert cache.stats().evictions == 1
        assert cache.peek(a.cache_key()) is None
        assert cache.peek(c.cache_key()) is not None

    def test_clear_resets_counters(self, paper_problem):
        cache = PlanCache()
        compile(paper_problem, cache=cache)
        cache.clear()
        stats = cache.stats()
        assert len(cache) == 0
        assert stats.misses == 0 and stats.hits == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)

    def test_cache_info_reports_hits_misses_and_sizes(self):
        cache = PlanCache(max_entries=8)
        info = cache.cache_info()
        assert info == (0, 0, 8, 0)
        compile(StencilProblem.paper_example(7, 9), cache=cache)
        compile(StencilProblem.paper_example(7, 9), cache=cache)
        compile(StencilProblem.paper_example(9, 11), cache=cache)
        info = cache.cache_info()
        assert info.hits == 1 and info.misses == 2
        assert info.maxsize == 8 and info.currsize == 2
        assert info.hit_rate == pytest.approx(1 / 3)

    def test_cache_none_bypasses(self, paper_problem):
        first = compile(paper_problem, cache=None)
        second = compile(paper_problem, cache=None)
        assert first is not second
        assert first.plan == second.plan
