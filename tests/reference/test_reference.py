"""Tests for repro.reference: kernels and the golden stencil executor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boundary import BoundaryKind, BoundarySpec
from repro.core.grid import GridSpec
from repro.core.stencil import StencilShape
from repro.reference.kernels import (
    AveragingKernel,
    MaxKernel,
    StencilKernel,
    SumKernel,
    WeightedKernel,
)
from repro.reference.stencil_exec import (
    build_gather_plan,
    clear_gather_plan_cache,
    gather_plan,
    make_test_grid,
    reference_run,
    reference_step,
    reference_step_scalar,
)


class TestKernels:
    def test_averaging_kernel_mean(self):
        k = AveragingKernel()
        assert k.apply([(0, 1), (1, 0)], [2.0, 4.0]) == 3.0

    def test_averaging_kernel_empty_tuple(self):
        assert AveragingKernel().apply([], []) == 0.0

    def test_averaging_kernel_metadata(self):
        k = AveragingKernel()
        assert k.ops_per_point == 4
        assert k.adder_levels == 2

    def test_sum_kernel(self):
        assert SumKernel().apply([(0, 1)], [1.5, 2.5]) == 4.0

    def test_max_kernel(self):
        assert MaxKernel().apply([(0, 1), (1, 0)], [3.0, -1.0]) == 3.0
        assert MaxKernel().apply([], []) == 0.0

    def test_weighted_kernel_uses_offsets(self):
        k = WeightedKernel(weights={(0, 1): 2.0, (1, 0): -1.0}, bias=0.5)
        out = k.apply([(0, 1), (1, 0)], [3.0, 4.0])
        assert out == pytest.approx(0.5 + 6.0 - 4.0)

    def test_weighted_kernel_ignores_unknown_offsets(self):
        k = WeightedKernel(weights={(0, 1): 2.0})
        assert k.apply([(5, 5)], [100.0]) == 0.0

    def test_weighted_kernel_ops_derived_from_taps(self):
        k = WeightedKernel(weights={(0, 1): 1.0, (1, 0): 1.0, (0, -1): 1.0})
        assert k.ops_per_point == 6

    def test_weighted_kernel_requires_weights(self):
        with pytest.raises(ValueError):
            WeightedKernel(weights={})

    def test_jacobi_factory(self):
        k = WeightedKernel.jacobi_2d()
        assert set(k.weights) == {(-1, 0), (1, 0), (0, -1), (0, 1)}

    def test_diffusion_factory_conserves_weight(self):
        k = WeightedKernel.diffusion_2d(nu=0.1)
        assert sum(k.weights.values()) == pytest.approx(1.0)


class TestReferenceStep:
    def test_averaging_on_constant_grid_is_identity_interior(self):
        grid = GridSpec(shape=(8, 8))
        data = np.full(grid.shape, 5.0)
        out = reference_step(data, grid, StencilShape.four_point_2d(),
                             BoundarySpec.all_circular(2), AveragingKernel())
        assert np.allclose(out, 5.0)

    def test_shape_mismatch_rejected(self):
        grid = GridSpec(shape=(4, 4))
        with pytest.raises(ValueError):
            reference_step(np.zeros((3, 3)), grid, StencilShape.four_point_2d(),
                           BoundarySpec.all_open(2), AveragingKernel())

    def test_circular_wrap_uses_opposite_row(self):
        grid = GridSpec(shape=(4, 4))
        data = np.zeros(grid.shape)
        data[3, 2] = 8.0  # bottom row value
        stencil = StencilShape.from_offsets([(-1, 0)], name="north-only")
        out = reference_step(data, grid, stencil, BoundarySpec.paper_2d(), SumKernel())
        # the north neighbour of (0,2) wraps to (3,2)
        assert out[0, 2] == 8.0

    def test_open_boundary_reduces_divisor(self):
        grid = GridSpec(shape=(3, 3))
        data = np.ones(grid.shape)
        out = reference_step(data, grid, StencilShape.four_point_2d(),
                             BoundarySpec.all_open(2), AveragingKernel())
        # centre has 4 neighbours, corner only 2, both average to 1.0 on a
        # constant grid; check the corner arithmetic explicitly with a ramp
        ramp = np.arange(9, dtype=float).reshape(3, 3)
        out = reference_step(ramp, grid, StencilShape.four_point_2d(),
                             BoundarySpec.all_open(2), AveragingKernel())
        assert out[0, 0] == pytest.approx((ramp[0, 1] + ramp[1, 0]) / 2)

    def test_constant_boundary_contributes_value(self):
        grid = GridSpec(shape=(3, 3))
        data = np.zeros(grid.shape)
        spec = BoundarySpec.per_dimension(
            [BoundaryKind.CONSTANT, BoundaryKind.CONSTANT], constant_value=4.0
        )
        out = reference_step(data, grid, StencilShape.four_point_2d(), spec, SumKernel())
        assert out[0, 0] == 8.0  # two out-of-grid neighbours at 4.0 each
        assert out[1, 1] == 0.0

    def test_diffusion_conserves_total_heat_on_periodic_grid(self):
        grid = GridSpec(shape=(12, 12))
        data = make_test_grid(grid, kind="impulse")
        out = reference_run(data, grid, StencilShape.five_point_2d(),
                            BoundarySpec.all_circular(2),
                            WeightedKernel.diffusion_2d(0.2), iterations=5)
        assert out.sum() == pytest.approx(data.sum())

    def test_reference_run_iterations(self):
        grid = GridSpec(shape=(5, 5))
        data = make_test_grid(grid, kind="ramp")
        once = reference_step(data, grid, StencilShape.four_point_2d(),
                              BoundarySpec.paper_2d(), AveragingKernel())
        twice = reference_run(data, grid, StencilShape.four_point_2d(),
                              BoundarySpec.paper_2d(), AveragingKernel(), iterations=2)
        again = reference_step(once, grid, StencilShape.four_point_2d(),
                               BoundarySpec.paper_2d(), AveragingKernel())
        assert np.allclose(twice, again)

    def test_zero_iterations_returns_copy(self):
        grid = GridSpec(shape=(4, 4))
        data = make_test_grid(grid, kind="random")
        out = reference_run(data, grid, StencilShape.four_point_2d(),
                            BoundarySpec.paper_2d(), AveragingKernel(), iterations=0)
        assert np.array_equal(out, data)
        assert out is not data

    def test_negative_iterations_rejected(self):
        grid = GridSpec(shape=(4, 4))
        with pytest.raises(ValueError):
            reference_run(np.zeros(grid.shape), grid, StencilShape.four_point_2d(),
                          BoundarySpec.paper_2d(), AveragingKernel(), iterations=-1)

    @given(
        rows=st.integers(3, 8),
        cols=st.integers(3, 8),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_periodic_averaging_matches_numpy_roll(self, rows, cols, seed):
        """On a fully periodic grid the 4-point average equals the mean of the
        four np.roll shifts — an independent NumPy formulation."""
        grid = GridSpec(shape=(rows, cols))
        rng = np.random.default_rng(seed)
        data = rng.random(grid.shape)
        out = reference_step(data, grid, StencilShape.four_point_2d(),
                             BoundarySpec.all_circular(2), AveragingKernel())
        expected = (
            np.roll(data, 1, axis=0) + np.roll(data, -1, axis=0)
            + np.roll(data, 1, axis=1) + np.roll(data, -1, axis=1)
        ) / 4.0
        assert np.allclose(out, expected)


class HarmonicKernel(StencilKernel):
    """A custom kernel with no apply_batch override: exercises the fallback."""

    def apply(self, offsets, values):
        if not values:
            return 0.0
        acc = 0.0
        for v in values:
            acc += 1.0 / (1.0 + abs(v))
        return acc


BOUNDARY_CASES = [
    BoundarySpec.paper_2d(),
    BoundarySpec.all_open(2),
    BoundarySpec.all_circular(2),
    BoundarySpec.per_dimension([BoundaryKind.MIRROR, BoundaryKind.CLAMP]),
    BoundarySpec.per_dimension(
        [BoundaryKind.CONSTANT, BoundaryKind.CIRCULAR], constant_value=2.75
    ),
]

KERNEL_CASES = [
    AveragingKernel(),
    SumKernel(),
    MaxKernel(),
    WeightedKernel.jacobi_2d(),
    WeightedKernel.diffusion_2d(0.15),
    HarmonicKernel(name="harmonic"),
]


class TestVectorizedExecutor:
    """The vectorized gather-plan path must equal the scalar loop *exactly*."""

    @pytest.mark.parametrize("boundary", BOUNDARY_CASES, ids=lambda b: b.describe())
    @pytest.mark.parametrize("kernel", KERNEL_CASES, ids=lambda k: k.name)
    def test_bitwise_equal_to_scalar(self, boundary, kernel):
        grid = GridSpec(shape=(7, 9))
        data = make_test_grid(grid, seed=3, kind="random")
        for stencil in (StencilShape.four_point_2d(), StencilShape.five_point_2d()):
            vec = reference_step(data, grid, stencil, boundary, kernel)
            scalar = reference_step_scalar(data, grid, stencil, boundary, kernel)
            assert np.array_equal(vec, scalar)  # exact equality, not tolerance

    @given(rows=st.integers(3, 9), cols=st.integers(3, 9), seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_bitwise_equal_on_random_grids(self, rows, cols, seed):
        grid = GridSpec(shape=(rows, cols))
        data = make_test_grid(grid, seed=seed, kind="random")
        boundary = BOUNDARY_CASES[seed % len(BOUNDARY_CASES)]
        kernel = KERNEL_CASES[seed % len(KERNEL_CASES)]
        vec = reference_step(data, grid, StencilShape.four_point_2d(), boundary, kernel)
        scalar = reference_step_scalar(
            data, grid, StencilShape.four_point_2d(), boundary, kernel
        )
        assert np.array_equal(vec, scalar)

    def test_multi_iteration_run_equals_repeated_scalar_steps(self):
        grid = GridSpec(shape=(6, 8))
        data = make_test_grid(grid, seed=11, kind="random")
        stencil = StencilShape.four_point_2d()
        boundary = BoundarySpec.paper_2d()
        kernel = AveragingKernel()
        vec = reference_run(data, grid, stencil, boundary, kernel, iterations=7)
        scalar = data.copy()
        for _ in range(7):
            scalar = reference_step_scalar(scalar, grid, stencil, boundary, kernel)
        assert np.array_equal(vec, scalar)

    def test_interior_collapses_into_one_group(self):
        # The whole point of signature grouping: on a periodic grid every
        # position resolves the same way relative to its centre.
        plan = build_gather_plan(
            GridSpec(shape=(10, 10)), StencilShape.four_point_2d(),
            BoundarySpec.all_circular(2),
        )
        assert len(plan.groups) > 1  # wrap rows/columns differ from interior
        largest = max(len(g.rows) for g in plan.groups)
        assert largest == 8 * 8  # the interior block

    def test_plan_cache_returns_same_object(self):
        clear_gather_plan_cache()
        grid = GridSpec(shape=(5, 5))
        args = (grid, StencilShape.four_point_2d(), BoundarySpec.paper_2d())
        assert gather_plan(*args) is gather_plan(*args)

    @pytest.mark.parametrize("kernel", KERNEL_CASES, ids=lambda k: k.name)
    def test_signed_zero_bit_patterns_match_scalar(self, kernel):
        # np.array_equal treats -0.0 == 0.0, so compare raw bit patterns:
        # the vectorized folds must reproduce the scalar path's signed zeros
        # (Python's sum() starts from int 0, turning a leading -0.0 into +0.0).
        grid = GridSpec(shape=(4, 4))
        data = np.full(grid.shape, -0.0)
        for boundary in (BoundarySpec.paper_2d(), BoundarySpec.all_open(2)):
            vec = reference_step(data, grid, StencilShape.four_point_2d(), boundary, kernel)
            scalar = reference_step_scalar(
                data, grid, StencilShape.four_point_2d(), boundary, kernel
            )
            assert vec.tobytes() == scalar.tobytes()

    def test_all_skipped_positions_produce_kernel_empty_value(self):
        # A stencil reaching entirely outside an open-boundary grid: every
        # access is skipped, so the kernel's empty-tuple value applies.
        grid = GridSpec(shape=(2, 2))
        stencil = StencilShape.from_offsets([(5, 5)], name="far")
        boundary = BoundarySpec.all_open(2)
        data = make_test_grid(grid, kind="ramp")
        vec = reference_step(data, grid, stencil, boundary, AveragingKernel())
        scalar = reference_step_scalar(data, grid, stencil, boundary, AveragingKernel())
        assert np.array_equal(vec, scalar)
        assert np.all(vec == 0.0)


class TestMakeTestGrid:
    def test_ramp(self):
        grid = GridSpec(shape=(3, 4))
        data = make_test_grid(grid, kind="ramp")
        assert data[0, 0] == 0 and data[2, 3] == 11

    def test_random_is_deterministic_per_seed(self):
        grid = GridSpec(shape=(4, 4))
        a = make_test_grid(grid, seed=7, kind="random")
        b = make_test_grid(grid, seed=7, kind="random")
        assert np.array_equal(a, b)

    def test_impulse(self):
        grid = GridSpec(shape=(5, 5))
        data = make_test_grid(grid, kind="impulse")
        assert data.sum() == 1.0
        assert data[2, 2] == 1.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_test_grid(GridSpec(shape=(2, 2)), kind="noise")
