"""The adaptive micro-batcher: bucketing, flush triggers, window adaptation."""

import asyncio

import pytest

from repro.memory.dram import DRAMTiming
from repro.pipeline.backends import EvaluationRequest
from repro.pipeline.problem import StencilProblem
from repro.serve.batcher import AdaptiveBatcher, request_signature


def run(coro):
    return asyncio.run(coro)


def echo_pricer(calls):
    """A pricer that records (problems, request) and answers with the inputs."""

    def price(problems, request):
        calls.append((list(problems), request))
        return [(problem, request) for problem in problems]

    return price


PROBLEM = StencilProblem.paper_example(11, 11)


class TestRequestSignature:
    def test_equal_requests_share_a_bucket_key(self):
        a = EvaluationRequest(iterations=3, dram_timing=DRAMTiming(read_latency=9))
        b = EvaluationRequest(iterations=3, dram_timing=DRAMTiming(read_latency=9))
        assert request_signature(a) == request_signature(b)

    def test_default_timing_equals_explicit_default(self):
        assert request_signature(EvaluationRequest()) == request_signature(
            EvaluationRequest(dram_timing=DRAMTiming())
        )

    def test_any_knob_changes_the_key(self):
        base = EvaluationRequest(iterations=3)
        for other in (
            EvaluationRequest(iterations=4),
            EvaluationRequest(iterations=3, system="baseline"),
            EvaluationRequest(iterations=3, write_through=False),
            EvaluationRequest(iterations=3, dram_timing=DRAMTiming(read_latency=9)),
        ):
            assert request_signature(other) != request_signature(base)


class TestFlushing:
    def test_size_triggered_flush_prices_one_batch(self):
        calls = []
        batcher = AdaptiveBatcher(echo_pricer(calls), max_batch=4, window_ms=1000.0,
                                  max_window_ms=1000.0)

        async def main():
            request = EvaluationRequest(iterations=2)
            results = await asyncio.gather(
                *(batcher.submit(PROBLEM, request) for _ in range(4))
            )
            return results

        results = run(main())
        assert len(calls) == 1
        assert len(calls[0][0]) == 4
        assert all(problem is PROBLEM for problem, _ in results)
        assert batcher.pending() == 0

    def test_window_triggered_flush_delivers_partial_bucket(self):
        calls = []
        batcher = AdaptiveBatcher(echo_pricer(calls), max_batch=100, window_ms=5.0)

        async def main():
            return await batcher.submit(PROBLEM, EvaluationRequest(iterations=2))

        result = run(main())
        assert result[0] is PROBLEM
        assert len(calls) == 1 and len(calls[0][0]) == 1

    def test_distinct_signatures_get_distinct_buckets(self):
        calls = []
        batcher = AdaptiveBatcher(echo_pricer(calls), max_batch=2, window_ms=1000.0,
                                  max_window_ms=1000.0)

        async def main():
            fast = EvaluationRequest(iterations=1)
            slow = EvaluationRequest(iterations=9)
            await asyncio.gather(
                batcher.submit(PROBLEM, fast),
                batcher.submit(PROBLEM, slow),
                batcher.submit(PROBLEM, fast),
                batcher.submit(PROBLEM, slow),
            )

        run(main())
        assert len(calls) == 2
        iteration_counts = sorted(request.iterations for _, request in calls)
        assert iteration_counts == [1, 9]

    def test_pricing_error_fans_out_to_all_waiters(self):
        def explode(problems, request):
            raise RuntimeError("boom")

        batcher = AdaptiveBatcher(explode, max_batch=2, window_ms=1000.0,
                                  max_window_ms=1000.0)

        async def main():
            request = EvaluationRequest()
            results = await asyncio.gather(
                batcher.submit(PROBLEM, request),
                batcher.submit(PROBLEM, request),
                return_exceptions=True,
            )
            return results

        results = run(main())
        assert all(isinstance(r, RuntimeError) for r in results)
        assert batcher.pending() == 0

    def test_short_pricing_is_reported_not_hung(self):
        batcher = AdaptiveBatcher(lambda problems, request: [], max_batch=1,
                                  window_ms=5.0)

        async def main():
            with pytest.raises(RuntimeError, match="0 results for 1"):
                await batcher.submit(PROBLEM, EvaluationRequest())

        run(main())

    def test_cancelled_waiters_are_skipped_and_nothing_leaks(self):
        calls = []
        batcher = AdaptiveBatcher(echo_pricer(calls), max_batch=10, window_ms=20.0)

        async def main():
            request = EvaluationRequest()
            doomed = asyncio.ensure_future(batcher.submit(PROBLEM, request))
            survivor = asyncio.ensure_future(batcher.submit(PROBLEM, request))
            await asyncio.sleep(0)  # let both enqueue
            doomed.cancel()
            result = await survivor
            assert result[0] is PROBLEM
            with pytest.raises(asyncio.CancelledError):
                await doomed

        run(main())
        assert len(calls) == 1 and len(calls[0][0]) == 2
        assert batcher.pending() == 0

    def test_flush_all_drains_every_bucket(self):
        calls = []
        batcher = AdaptiveBatcher(echo_pricer(calls), max_batch=100, window_ms=1000.0,
                                  max_window_ms=1000.0)

        async def main():
            futures = [
                asyncio.ensure_future(
                    batcher.submit(PROBLEM, EvaluationRequest(iterations=i))
                )
                for i in (1, 2, 3)
            ]
            await asyncio.sleep(0)
            assert batcher.pending() == 3
            batcher.flush_all()
            await asyncio.gather(*futures)
            assert batcher.pending() == 0

        run(main())
        assert len(calls) == 3


class TestAdaptiveWindow:
    def test_full_flushes_grow_the_window(self):
        batcher = AdaptiveBatcher(lambda p, r: [None] * len(p), max_batch=2,
                                  window_ms=2.0, max_window_ms=10.0, grow=2.0)

        async def main():
            request = EvaluationRequest()
            for _ in range(8):
                await asyncio.gather(
                    batcher.submit(PROBLEM, request), batcher.submit(PROBLEM, request)
                )

        run(main())
        assert batcher.window_ms == 10.0  # grown and clamped at the ceiling

    def test_sparse_timer_flushes_shrink_the_window(self):
        batcher = AdaptiveBatcher(lambda p, r: [None] * len(p), max_batch=100,
                                  window_ms=4.0, min_window_ms=1.0, shrink=0.5)

        async def main():
            for _ in range(6):
                await batcher.submit(PROBLEM, EvaluationRequest())

        run(main())
        assert batcher.window_ms == 1.0  # shrunk and clamped at the floor

    def test_constructor_validation(self):
        price = lambda p, r: []  # noqa: E731
        with pytest.raises(ValueError):
            AdaptiveBatcher(price, max_batch=0)
        with pytest.raises(ValueError):
            AdaptiveBatcher(price, window_ms=0.1, min_window_ms=0.2)
        with pytest.raises(ValueError):
            AdaptiveBatcher(price, grow=0.9)
        with pytest.raises(ValueError):
            AdaptiveBatcher(price, shrink=1.5)
