"""The bounded content-keyed response memo."""

import pytest

from repro.serve.memo import ResponseMemo


class TestResponseMemo:
    def test_miss_then_hit(self):
        memo = ResponseMemo(max_entries=4)
        assert memo.get("k") is None
        memo.put("k", {"cycles": 1})
        assert memo.get("k") == {"cycles": 1}
        info = memo.cache_info()
        assert (info.hits, info.misses, info.currsize) == (1, 1, 1)

    def test_lru_eviction_order(self):
        memo = ResponseMemo(max_entries=2)
        memo.put("a", {"v": 1})
        memo.put("b", {"v": 2})
        assert memo.get("a") is not None  # refresh a; b is now LRU
        memo.put("c", {"v": 3})
        assert memo.get("b") is None
        assert memo.get("a") is not None
        assert memo.get("c") is not None
        assert memo.evictions == 1

    def test_clear_resets_counters(self):
        memo = ResponseMemo()
        memo.put("a", {})
        memo.get("a")
        memo.clear()
        info = memo.cache_info()
        assert (info.hits, info.misses, info.currsize) == (0, 0, 0)
        assert len(memo) == 0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            ResponseMemo(max_entries=0)
