"""Wire protocol: canonical encoding, deterministic point lowering."""

import json

import pytest

from repro.core.partition import StreamBufferMode
from repro.memory.dram import DRAMTiming
from repro.pipeline.backends import evaluate
from repro.pipeline.problem import StencilProblem
from repro.serve.protocol import (
    ProtocolError,
    decode_line,
    encode,
    make_point,
    parse_point,
    point_key,
    result_payload,
)


class TestEncoding:
    def test_encode_is_canonical_and_newline_terminated(self):
        line = encode({"b": 1, "a": {"z": 2, "y": 3}})
        assert line == b'{"a":{"y":3,"z":2},"b":1}\n'

    def test_round_trip(self):
        message = {"id": 3, "verb": "evaluate", "point": {"grid": [11, 11]}}
        assert decode_line(encode(message).strip()) == message

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_line(b"{not json")
        with pytest.raises(ProtocolError):
            decode_line(b'"a bare string"')


class TestParsePoint:
    def test_defaults_are_the_paper_case(self):
        problem, request = parse_point({})
        assert problem.cache_key() == StencilProblem.paper_example(11, 11).cache_key()
        assert request.system == "smache"
        assert request.iterations == 1
        assert request.write_through is True
        assert request.dram_timing is None

    def test_full_spec_lowers_every_field(self):
        spec = {
            "grid": [24, 16],
            "mode": StreamBufferMode.REGISTER_ONLY.value,
            "max_stream_reach": 4,
            "max_total_bits": 1 << 20,
            "name": "wire-point",
            "system": "baseline",
            "iterations": 7,
            "write_through": False,
            "dram_timing": {"stream_word_cycles": 2, "random_access_cycles": 9,
                            "read_latency": 30},
        }
        problem, request = parse_point(spec)
        assert problem.grid.shape == (24, 16)
        assert problem.mode is StreamBufferMode.REGISTER_ONLY
        assert problem.max_stream_reach == 4
        assert problem.max_total_bits == 1 << 20
        assert problem.name == "wire-point"
        assert request.system == "baseline"
        assert request.iterations == 7
        assert request.write_through is False
        assert request.dram_timing == DRAMTiming(
            stream_word_cycles=2, random_access_cycles=9, read_latency=30
        )

    def test_identical_specs_share_the_stable_key(self):
        spec = make_point((13, 11), iterations=3)
        a = parse_point(spec)
        b = parse_point(json.loads(json.dumps(spec)))  # a wire round trip
        assert point_key(*a) == point_key(*b)

    def test_different_knobs_get_different_keys(self):
        base = parse_point(make_point((13, 11), iterations=3))
        for other in (
            make_point((13, 12), iterations=3),
            make_point((13, 11), iterations=4),
            make_point((13, 11), iterations=3, system="baseline"),
            make_point((13, 11), iterations=3, write_through=False),
            make_point((13, 11), iterations=3,
                       dram_timing={"random_access_cycles": 9}),
        ):
            assert point_key(*parse_point(other)) != point_key(*base)

    def test_unknown_fields_are_rejected(self):
        with pytest.raises(ProtocolError, match="unknown point field"):
            parse_point({"grid": [11, 11], "iteratons": 5})
        with pytest.raises(ProtocolError, match="unknown dram_timing field"):
            parse_point({"dram_timing": {"read_latency": 4, "rw_latency": 4}})

    def test_invalid_values_are_rejected(self):
        with pytest.raises(ProtocolError):
            parse_point({"grid": [11]})
        with pytest.raises(ProtocolError):
            parse_point({"grid": ["a", "b"]})
        with pytest.raises(ProtocolError):
            parse_point({"system": "quantum"})
        with pytest.raises(ProtocolError):
            parse_point({"mode": "imaginary"})
        with pytest.raises(ProtocolError):
            parse_point({"iterations": -1})
        with pytest.raises(ProtocolError):
            parse_point("not a dict")


class TestResultPayload:
    def test_payload_survives_json_bitwise(self):
        problem, request = parse_point(make_point((11, 11), iterations=5))
        result = evaluate(problem, backend="analytic", request=request)
        payload = result_payload(result)
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped == payload
        # The detail floats must survive exactly (canonical JSON contract).
        for key, value in payload["extra"].items():
            assert type(round_tripped["extra"][key]) is type(value), key
