"""Serve-side resilience: batch timeouts, the circuit breaker, structured
error responses over TCP, and the clients' bounded jittered retries."""

import asyncio
import random
import time

import pytest

from repro.faults.breaker import CLOSED, OPEN, CircuitBreaker
from repro.serve import (
    AsyncServeClient,
    EvaluationServer,
    EvaluationService,
    EvaluationTimeout,
    EvaluationTimeoutError,
    ServiceUnavailableError,
    Unavailable,
)
from repro.serve.client import Overloaded, _retry_delay_s
from repro.serve.protocol import make_point


def run(coro):
    return asyncio.run(coro)


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def never_resolving_submit(problem, request):
    return asyncio.get_running_loop().create_future()


def exploding_price(problems, request):
    raise RuntimeError("engine exploded")


class TestBatchTimeout:
    def test_hung_flush_raises_structured_timeout(self):
        async def scenario():
            service = EvaluationService(batch_timeout_s=0.05, memo_entries=0)
            service.batcher.submit = never_resolving_submit
            with pytest.raises(EvaluationTimeoutError) as err:
                await service.submit(make_point((11, 11), iterations=2))
            assert err.value.timeout_s == 0.05
            assert service.metrics.timeouts == 1
            assert service.inflight == 0  # the admission slot was released
            assert service.breaker.snapshot()["failures"] == 1

        run(scenario())

    def test_validation(self):
        with pytest.raises(ValueError):
            EvaluationService(batch_timeout_s=0.0)


class TestCircuitBreaker:
    def test_consecutive_engine_failures_trip_and_shed(self):
        async def scenario():
            service = EvaluationService(
                breaker_threshold=2, breaker_cooldown_ms=60_000.0, memo_entries=0
            )
            service.batcher._price = exploding_price
            point = make_point((11, 11), iterations=2)
            for _ in range(2):
                with pytest.raises(RuntimeError, match="engine exploded"):
                    await service.submit(point)
            assert service.breaker.state == OPEN
            with pytest.raises(ServiceUnavailableError) as err:
                await service.submit(point)
            assert err.value.retry_after_ms > 0
            assert service.metrics.sheds == 1
            stats = service.stats()
            assert stats["breaker"]["state"] == OPEN
            assert stats["breaker"]["trips"] == 1
            assert stats["breaker"]["shed"] == 1
            # The exact-shape "requests" contract is untouched by resilience.
            assert set(stats["requests"]) == {
                "accepted", "completed", "rejected", "errors",
            }

        run(scenario())

    def test_breaker_recovers_through_a_probe(self):
        async def scenario():
            service = EvaluationService(
                breaker_threshold=1, breaker_cooldown_ms=50.0, memo_entries=0
            )
            clock = Clock()
            service.breaker = CircuitBreaker(threshold=1, cooldown_ms=50.0, clock=clock)
            point = make_point((11, 11), iterations=2)
            real_price = service.batcher._price
            service.batcher._price = exploding_price
            with pytest.raises(RuntimeError):
                await service.submit(point)
            assert service.breaker.state == OPEN
            # Cooldown elapses; the engine is healthy again: one probe closes.
            clock.now += 0.05
            service.batcher._price = real_price
            payload, served_by = await service.submit(point)
            assert served_by == "engine" and payload["cycles"] > 0
            assert service.breaker.state == CLOSED

        run(scenario())

    def test_memo_hits_bypass_an_open_breaker(self):
        async def scenario():
            service = EvaluationService(breaker_threshold=1, breaker_cooldown_ms=60_000.0)
            point = make_point((11, 11), iterations=2)
            await service.submit(point)  # populate the memo
            service.breaker.record_failure()  # trip it
            assert service.breaker.state == OPEN
            payload, served_by = await service.submit(point)
            assert served_by == "memo" and payload["cycles"] > 0

        run(scenario())


class TestTcpResponses:
    def test_unavailable_and_timeout_reach_the_client_typed(self):
        async def scenario():
            service = EvaluationService(
                batch_timeout_s=0.05, breaker_threshold=1,
                breaker_cooldown_ms=60_000.0, memo_entries=0,
            )
            server = EvaluationServer(service=service)
            host, port = await server.start()
            try:
                async with AsyncServeClient(host, port) as client:
                    # A hung engine: structured timeout, connection survives.
                    service.batcher.submit = never_resolving_submit
                    with pytest.raises(EvaluationTimeout) as terr:
                        await client.evaluate(make_point((11, 11), iterations=2))
                    assert terr.value.timeout_s == 0.05
                    # The timeout tripped the threshold-1 breaker: shed next.
                    with pytest.raises(Unavailable) as uerr:
                        await client.evaluate(make_point((12, 11), iterations=2))
                    assert uerr.value.retry_after_ms > 0
                    assert await client.ping()  # the connection still works
                    stats = await client.stats()
                    assert stats["breaker"]["state"] == OPEN
                    assert stats["breaker"]["timeouts"] == 1
            finally:
                await server.stop()

        run(scenario())

    def test_async_retry_rides_out_a_cooldown(self):
        async def scenario():
            service = EvaluationService(
                breaker_threshold=1, breaker_cooldown_ms=30.0, memo_entries=0
            )
            server = EvaluationServer(service=service)
            host, port = await server.start()
            try:
                service.breaker.record_failure()
                assert service.breaker.state == OPEN
                async with AsyncServeClient(host, port) as client:
                    payload = await client.evaluate_retry(
                        make_point((11, 11), iterations=2),
                        max_attempts=8,
                        deadline_s=10.0,
                        rng=random.Random(0),
                    )
                assert payload["cycles"] > 0
                assert service.metrics.sheds >= 1
            finally:
                await server.stop()

        run(scenario())


class TestClientRetryBudgets:
    def test_attempt_budget_re_raises_the_last_rejection(self):
        async def scenario():
            service = EvaluationService(
                breaker_threshold=1, breaker_cooldown_ms=60_000.0, memo_entries=0
            )
            server = EvaluationServer(service=service)
            host, port = await server.start()
            try:
                service.breaker.record_failure()
                async with AsyncServeClient(host, port) as client:
                    with pytest.raises(Unavailable):
                        await client.evaluate_retry(
                            make_point((11, 11), iterations=2),
                            max_attempts=3,
                            deadline_s=0.2,  # caps the hint-length sleeps too
                            rng=random.Random(0),
                        )
                # Max three attempts were actually sent.
                assert service.metrics.sheds <= 3
            finally:
                await server.stop()

        run(scenario())

    def test_deadline_refuses_sleeps_it_cannot_afford(self):
        # A 60s hint against a 0.2s deadline: give up immediately, not in 60s.
        async def scenario():
            service = EvaluationService(
                breaker_threshold=1, breaker_cooldown_ms=60_000.0, memo_entries=0
            )
            server = EvaluationServer(service=service)
            host, port = await server.start()
            try:
                service.breaker.record_failure()
                started = time.monotonic()
                async with AsyncServeClient(host, port) as client:
                    with pytest.raises(Unavailable):
                        await client.evaluate_retry(
                            make_point((11, 11), iterations=2),
                            max_attempts=8,
                            deadline_s=0.2,
                        )
                assert time.monotonic() - started < 5.0
                assert service.metrics.sheds == 1  # no doomed retry was sent
            finally:
                await server.stop()

        run(scenario())

    def test_retry_delay_math(self):
        exc = Overloaded(1000)
        # jitter=0: the delay is exactly the hint.
        assert _retry_delay_s(
            exc, random.Random(0), 0.0, started=0.0, deadline_s=None, now=0.0
        ) == pytest.approx(1.0)
        # jitter stays within the +/- band, deterministically per rng seed.
        a = _retry_delay_s(exc, random.Random(7), 0.5, 0.0, None, 0.0)
        b = _retry_delay_s(exc, random.Random(7), 0.5, 0.0, None, 0.0)
        assert a == b and 0.5 <= a <= 1.5
        # A sleep that would cross the deadline returns None (give up).
        assert (
            _retry_delay_s(exc, random.Random(0), 0.0, 0.0, deadline_s=0.5, now=0.0)
            is None
        )
