"""End-to-end evaluation service: TCP round trips, memo, backpressure,
scalar-path parity, and the no-leaked-futures disconnect contract."""

import asyncio
import json
import queue
import threading

import pytest

from repro.pipeline.backends import evaluate
from repro.serve import (
    AsyncServeClient,
    EvaluationServer,
    Overloaded,
    ServeClient,
    ServeError,
)
from repro.serve.protocol import encode, make_point, parse_point, result_payload


def run(coro):
    return asyncio.run(coro)


def canonical(payload):
    """The wire's canonical JSON — byte-compare responses with this."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def scalar_reference(spec):
    """What the scalar analytic backend answers for a point spec."""
    problem, request = parse_point(spec)
    return result_payload(evaluate(problem, backend="analytic", request=request))


async def wait_until(predicate, timeout=5.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        assert loop.time() < deadline, "condition not met in time"
        await asyncio.sleep(0.01)


def mixed_points(count, unique):
    """``count`` specs cycling over ``unique`` distinct grids (duplicates on
    purpose: they exercise the memo and fill batches)."""
    return [
        make_point((9 + (i % unique), 11), iterations=3) for i in range(count)
    ]


def serve_points(points, **service_kwargs):
    """Start a fresh server, evaluate every point concurrently, tear down."""

    async def main():
        server = EvaluationServer(**service_kwargs)
        host, port = await server.start()
        try:
            async with AsyncServeClient(host, port) as client:
                return await asyncio.gather(*(client.evaluate(p) for p in points))
        finally:
            await server.stop()

    return run(main())


class TestEndToEnd:
    def test_concurrent_mixed_load_is_bitwise_scalar(self):
        points = mixed_points(40, unique=8)
        payloads = serve_points(points)
        for point, payload in zip(points, payloads):
            assert canonical(payload) == canonical(scalar_reference(point))

    def test_duplicate_point_is_served_from_memo(self):
        async def main():
            server = EvaluationServer()
            host, port = await server.start()
            try:
                async with AsyncServeClient(host, port) as client:
                    spec = make_point((14, 12), iterations=2)
                    first = await client.evaluate_full(spec)
                    second = await client.evaluate_full(spec)
            finally:
                await server.stop()
            assert first["served_by"] == "engine"
            assert second["served_by"] == "memo"
            assert canonical(first["result"]) == canonical(second["result"])

        run(main())

    def test_full_buckets_flush_as_batches(self):
        async def main():
            server = EvaluationServer(max_batch=4, window_ms=50.0,
                                      max_window_ms=200.0)
            host, port = await server.start()
            try:
                async with AsyncServeClient(host, port) as client:
                    points = [make_point((9 + i, 13), iterations=2) for i in range(8)]
                    await asyncio.gather(*(client.evaluate(p) for p in points))
                    return await client.stats()
            finally:
                await server.stop()

        stats = run(main())
        assert stats["requests"]["completed"] == 8
        assert stats["batches"]["histogram"].get("4", 0) >= 1

    def test_stats_shape(self):
        async def main():
            server = EvaluationServer()
            host, port = await server.start()
            try:
                async with AsyncServeClient(host, port) as client:
                    assert await client.ping()
                    await client.evaluate(make_point((11, 11), iterations=1))
                    return await client.stats()
            finally:
                await server.stop()

        stats = run(main())
        assert stats["requests"] == {
            "accepted": 1, "completed": 1, "rejected": 0, "errors": 0
        }
        assert stats["latency"]["count"] == 1
        assert stats["throughput_rps"] > 0
        assert stats["batching_enabled"] is True and stats["scalar"] is False
        assert stats["memo"]["currsize"] == 1
        assert stats["engine"]["session_currsize"] >= 0
        assert set(stats["engine_hit_rates"]) == {"packed_session", "fold_memo"}
        assert stats["plan_cache"]["currsize"] >= 1
        assert stats["inflight"] == 0

    def test_errors_do_not_kill_the_connection(self):
        async def main():
            server = EvaluationServer()
            host, port = await server.start()
            try:
                async with AsyncServeClient(host, port) as client:
                    with pytest.raises(ServeError, match="unknown point field"):
                        await client.evaluate({"gird": [11, 11]})
                    response = await client.request("frobnicate")
                    assert response["ok"] is False
                    assert "unknown verb" in response["error"]
                    # The connection survives both errors.
                    payload = await client.evaluate(make_point((11, 11)))
                    stats = await client.stats()
            finally:
                await server.stop()
            assert payload["cycles"] > 0
            assert stats["requests"]["errors"] >= 1

        run(main())

    def test_sync_client_round_trip(self):
        box = queue.Queue()

        def serve():
            async def main():
                server = EvaluationServer()
                _, port = await server.start()
                stop = asyncio.Event()
                box.put((asyncio.get_running_loop(), stop, port))
                await stop.wait()
                await server.stop()

            asyncio.run(main())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        loop, stop, port = box.get(timeout=10)
        try:
            spec = make_point((15, 13), iterations=4)
            with ServeClient("127.0.0.1", port) as client:
                assert client.ping()
                payload = client.evaluate(spec)
                assert canonical(payload) == canonical(scalar_reference(spec))
                stats = client.stats()
                assert stats["requests"]["completed"] == 1
        finally:
            loop.call_soon_threadsafe(stop.set)
            thread.join(timeout=10)
        assert not thread.is_alive()


class TestScalarParity:
    """Satellite: ``REPRO_ANALYTIC_BATCH=0`` and ``scalar=True`` both route
    through the per-request scalar path with byte-identical responses."""

    def test_env_kill_switch_is_byte_identical(self, monkeypatch):
        points = mixed_points(12, unique=5)
        monkeypatch.setenv("REPRO_ANALYTIC_BATCH", "1")
        batched = serve_points(points)
        monkeypatch.setenv("REPRO_ANALYTIC_BATCH", "0")
        scalar = serve_points(points)
        for point, fast, slow in zip(points, batched, scalar):
            assert canonical(fast) == canonical(slow)
            assert canonical(fast) == canonical(scalar_reference(point))

    def test_env_kill_switch_is_reported_in_stats(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYTIC_BATCH", "0")

        async def main():
            server = EvaluationServer()
            host, port = await server.start()
            try:
                async with AsyncServeClient(host, port) as client:
                    await client.evaluate(make_point((11, 11)))
                    return await client.stats()
            finally:
                await server.stop()

        stats = run(main())
        assert stats["batching_enabled"] is False

    def test_scalar_service_mode_is_byte_identical(self):
        points = mixed_points(10, unique=10)
        payloads = serve_points(points, scalar=True)
        for point, payload in zip(points, payloads):
            assert canonical(payload) == canonical(scalar_reference(point))

    def test_scalar_service_mode_disables_the_memo(self):
        async def main():
            server = EvaluationServer(scalar=True)
            host, port = await server.start()
            try:
                async with AsyncServeClient(host, port) as client:
                    spec = make_point((11, 11), iterations=2)
                    first = await client.evaluate_full(spec)
                    second = await client.evaluate_full(spec)
                    stats = await client.stats()
            finally:
                await server.stop()
            assert first["served_by"] == "engine"
            assert second["served_by"] == "engine"  # no memo in scalar mode
            assert stats["scalar"] is True and stats["memo"] is None

        run(main())


class TestBackpressure:
    """Satellite: queue overflow rejects cleanly and a disconnected client
    leaks no queued futures."""

    def test_overflow_rejects_with_retry_hint(self):
        async def main():
            server = EvaluationServer(
                queue_limit=2, window_ms=100.0, max_window_ms=200.0
            )
            host, port = await server.start()
            try:
                async with AsyncServeClient(host, port) as client:
                    points = [make_point((9 + i, 17), iterations=2) for i in range(8)]
                    outcomes = await asyncio.gather(
                        *(client.evaluate(p) for p in points),
                        return_exceptions=True,
                    )
                    stats = await client.stats()
            finally:
                await server.stop()
            return outcomes, stats, server.service

        outcomes, stats, service = run(main())
        overloads = [o for o in outcomes if isinstance(o, Overloaded)]
        served = [o for o in outcomes if isinstance(o, dict)]
        assert len(served) == 2 and len(overloads) == 6
        assert all(o.retry_after_ms >= 1 for o in overloads)
        assert stats["requests"]["rejected"] == 6
        assert stats["requests"]["completed"] == 2
        assert service.inflight == 0 and service.batcher.pending() == 0

    def test_retry_eventually_drains_the_queue(self):
        async def main():
            server = EvaluationServer(
                queue_limit=2, window_ms=5.0, min_window_ms=1.0
            )
            host, port = await server.start()
            try:
                async with AsyncServeClient(host, port) as client:
                    points = [make_point((9 + i, 19), iterations=2) for i in range(10)]
                    payloads = await asyncio.gather(
                        *(client.evaluate_retry(p, max_attempts=50) for p in points)
                    )
            finally:
                await server.stop()
            return points, payloads

        points, payloads = run(main())
        assert len(payloads) == 10
        for point, payload in zip(points, payloads):
            assert canonical(payload) == canonical(scalar_reference(point))

    def test_disconnect_leaks_no_queued_futures(self):
        async def main():
            server = EvaluationServer(window_ms=300.0, max_window_ms=1000.0)
            service = server.service
            host, port = await server.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                for i in range(3):
                    writer.write(encode({
                        "id": i, "verb": "evaluate",
                        "point": make_point((9 + i, 23), iterations=2),
                    }))
                await writer.drain()
                # All three admitted into one (unflushed) bucket...
                await wait_until(lambda: service.batcher.pending() == 3)
                assert service.inflight == 3
                # ...then the client vanishes before the window flushes.
                writer.close()
                await writer.wait_closed()
                await wait_until(lambda: service.inflight == 0)
                # The flush prices the bucket but every waiter is cancelled:
                # results are dropped, nothing is queued, nothing leaks.
                service.batcher.flush_all()
                assert service.batcher.pending() == 0
                assert service.metrics.completed == 0
            finally:
                await server.stop()

        run(main())
