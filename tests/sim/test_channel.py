"""Tests for repro.sim.channel: two-phase FIFOs and wires."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.channel import Channel, SimulationChannelError, Wire


class TestChannelBasics:
    def test_new_channel_is_empty(self):
        ch = Channel("c")
        assert not ch.can_pop()
        assert ch.can_push()
        assert ch.is_idle
        assert len(ch) == 0

    def test_push_not_visible_until_commit(self):
        ch = Channel("c")
        ch.push(1)
        assert not ch.can_pop()
        ch.commit()
        assert ch.can_pop()
        assert ch.peek() == 1

    def test_pop_returns_fifo_order(self):
        ch = Channel("c", capacity=4)
        for v in (1, 2, 3):
            ch.push(v)
        ch.commit()
        assert [ch.pop(), ch.pop(), ch.pop()] == [1, 2, 3]

    def test_pop_frees_space_only_after_commit(self):
        ch = Channel("c", capacity=1)
        ch.push(1)
        ch.commit()
        ch.pop()
        assert not ch.can_push()  # space frees at the commit
        ch.commit()
        assert ch.can_push()

    def test_push_over_capacity_raises(self):
        ch = Channel("c", capacity=1)
        ch.push(1)
        with pytest.raises(SimulationChannelError):
            ch.push(2)

    def test_pop_empty_raises(self):
        ch = Channel("c")
        with pytest.raises(SimulationChannelError):
            ch.pop()

    def test_peek_past_end_raises(self):
        ch = Channel("c")
        ch.push(1)
        ch.commit()
        with pytest.raises(SimulationChannelError):
            ch.peek(offset=1)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Channel("c", capacity=0)

    def test_drain(self):
        ch = Channel("c", capacity=4)
        for v in range(3):
            ch.push(v)
        ch.commit()
        assert ch.drain() == [0, 1, 2]

    def test_reset_clears_everything(self):
        ch = Channel("c")
        ch.push(1)
        ch.commit()
        ch.reset()
        assert not ch.can_pop()
        assert ch.total_pushes == 0


class TestChannelThroughput:
    def test_capacity_two_sustains_one_per_cycle(self):
        """A producer pushing every cycle and a consumer popping every cycle
        never stall with capacity >= 2 (the skid-buffer property)."""
        ch = Channel("c", capacity=2)
        produced = 0
        consumed = []
        for cycle in range(50):
            if ch.can_pop():
                consumed.append(ch.pop())
            if ch.can_push():
                ch.push(produced)
                produced += 1
            ch.commit()
        assert produced >= 49
        assert consumed == list(range(len(consumed)))
        assert len(consumed) >= 48

    def test_capacity_one_halves_throughput(self):
        ch = Channel("c", capacity=1)
        produced = 0
        consumed = 0
        for cycle in range(40):
            if ch.can_pop():
                ch.pop()
                consumed += 1
            if ch.can_push():
                ch.push(produced)
                produced += 1
            ch.commit()
        assert consumed <= 21  # roughly every other cycle

    def test_stall_counters(self):
        ch = Channel("c", capacity=1)
        ch.push(0)
        ch.commit()
        ch.note_push_stall()
        ch.note_pop_stall()
        assert ch.push_stall_cycles == 1
        assert ch.pop_stall_cycles == 1

    def test_max_occupancy_tracked(self):
        ch = Channel("c", capacity=4)
        for v in range(3):
            ch.push(v)
        ch.commit()
        assert ch.max_occupancy == 3

    @given(ops=st.lists(st.sampled_from(["push", "pop", "commit"]), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_fifo_order_preserved_under_any_interleaving(self, ops):
        """Whatever the interleaving, popped values are a prefix-ordered
        subsequence 0,1,2,... of pushed values."""
        ch = Channel("c", capacity=3)
        next_value = 0
        popped = []
        for op in ops:
            if op == "push" and ch.can_push():
                ch.push(next_value)
                next_value += 1
            elif op == "pop" and ch.can_pop():
                popped.append(ch.pop())
            elif op == "commit":
                ch.commit()
        assert popped == list(range(len(popped)))


class TestWire:
    def test_initial_value(self):
        w = Wire("w", initial=7)
        assert w.get() == 7

    def test_set_visible_after_commit(self):
        w = Wire("w")
        w.set(3)
        assert w.get() == 0
        w.commit()
        assert w.get() == 3

    def test_commit_without_set_keeps_value(self):
        w = Wire("w", initial=5)
        w.commit()
        assert w.get() == 5

    def test_reset(self):
        w = Wire("w", initial=2)
        w.set(9)
        w.commit()
        w.reset()
        assert w.get() == 2
