"""Tests for repro.sim.engine: the simulator and component scheduling."""

import pytest

from repro.sim.engine import Component, SimulationError, Simulator


class Producer(Component):
    """Pushes consecutive integers into a channel."""

    def __init__(self, sim, limit=100):
        super().__init__(sim, "producer")
        self.out = self.channel("out", 2)
        self.sent = 0
        self.limit = limit

    def tick(self):
        if self.sent < self.limit and self.out.can_push():
            self.out.push(self.sent)
            self.sent += 1

    def finished(self):
        return self.sent >= self.limit


class Consumer(Component):
    """Pops everything it can from a channel."""

    def __init__(self, sim, source):
        super().__init__(sim, "consumer")
        self.source = source
        self.received = []

    def tick(self):
        if self.source.can_pop():
            self.received.append(self.source.pop())

    def finished(self):
        return not self.source.can_pop()


class TestSimulator:
    def test_producer_consumer_pipeline(self):
        sim = Simulator()
        producer = Producer(sim, limit=20)
        consumer = Consumer(sim, producer.out)
        sim.run_until(lambda: len(consumer.received) == 20, max_cycles=200)
        assert consumer.received == list(range(20))

    def test_registration_order_does_not_change_result(self):
        # consumer registered before producer: same outcome, because channels
        # are registered (one cycle per hop).
        sim1 = Simulator()
        p1 = Producer(sim1, limit=15)
        c1 = Consumer(sim1, p1.out)
        sim1.run_until(lambda: len(c1.received) == 15, max_cycles=200)

        sim2 = Simulator()
        p2 = Producer(sim2, limit=15)
        # Manually register a consumer that was constructed later but ticked
        # first by swapping the component list.
        c2 = Consumer(sim2, p2.out)
        sim2._components.reverse()
        sim2.run_until(lambda: len(c2.received) == 15, max_cycles=200)

        assert c1.received == c2.received
        assert sim1.cycle == sim2.cycle

    def test_throughput_is_one_per_cycle_after_fill(self):
        sim = Simulator()
        producer = Producer(sim, limit=50)
        consumer = Consumer(sim, producer.out)
        cycles = sim.run_until(lambda: len(consumer.received) == 50, max_cycles=500)
        assert cycles <= 50 + 5  # pipeline fill overhead only

    def test_run_until_timeout_raises(self):
        sim = Simulator()
        Producer(sim, limit=10)
        with pytest.raises(SimulationError):
            sim.run_until(lambda: False, max_cycles=20)

    def test_run_until_check_every_cannot_overshoot_max_cycles(self):
        # Regression: with check_every > 1 the final batch used to run the
        # clock past max_cycles before the budget check fired.
        sim = Simulator()
        Producer(sim, limit=100)
        with pytest.raises(SimulationError):
            sim.run_until(lambda: False, max_cycles=10, check_every=7)
        assert sim.cycle == 10

    def test_run_until_check_every_batches_to_exact_budget(self):
        sim = Simulator()
        producer = Producer(sim, limit=20)
        consumer = Consumer(sim, producer.out)
        cycles = sim.run_until(
            lambda: len(consumer.received) == 20, max_cycles=200, check_every=8
        )
        assert consumer.received == list(range(20))
        # the condition is only sampled every 8 cycles, so the stop point is
        # the first multiple of the batch size at or after completion
        assert cycles % 8 == 0

    def test_run_until_rejects_non_positive_check_every(self):
        sim = Simulator()
        Producer(sim, limit=5)
        with pytest.raises(ValueError):
            sim.run_until(lambda: False, max_cycles=10, check_every=0)

    def test_run_until_idle(self):
        sim = Simulator()
        producer = Producer(sim, limit=5)
        consumer = Consumer(sim, producer.out)
        sim.run_until_idle(max_cycles=100)
        assert consumer.received == list(range(5))

    def test_step_requires_positive_cycles(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.step(0)

    def test_duplicate_channel_names_rejected(self):
        sim = Simulator()
        sim.create_channel("x")
        with pytest.raises(SimulationError):
            sim.create_channel("x")

    def test_duplicate_wire_names_rejected(self):
        sim = Simulator()
        sim.create_wire("w")
        with pytest.raises(SimulationError):
            sim.create_wire("w")

    def test_reset_restores_cycle_and_channels(self):
        sim = Simulator()
        producer = Producer(sim, limit=5)
        consumer = Consumer(sim, producer.out)
        sim.run_until_idle(max_cycles=100)
        sim.reset()
        assert sim.cycle == 0
        assert producer.out.occupancy == 0

    def test_channel_stats_reported(self):
        sim = Simulator()
        producer = Producer(sim, limit=5)
        Consumer(sim, producer.out)
        sim.run_until_idle(max_cycles=100)
        stats = sim.channel_stats()
        assert stats["producer.out"]["pushes"] == 5
        assert stats["producer.out"]["pops"] == 5

    def test_base_component_tick_is_abstract(self):
        sim = Simulator()
        comp = Component(sim, "raw")
        with pytest.raises(NotImplementedError):
            comp.tick()
