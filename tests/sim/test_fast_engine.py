"""Tests for the idle-horizon fast engine: scheduling, skipping, debug mode."""

import pytest

from repro.sim.engine import (
    ENGINE_MODES,
    Component,
    SimulationError,
    Simulator,
    default_engine,
    set_default_engine,
)


class LatencyProducer(Component):
    """Pushes one item every ``period`` cycles (self-scheduled activity)."""

    def __init__(self, sim, limit=10, period=25):
        super().__init__(sim, "producer")
        self.out = self.channel("out", 2)
        self.sent = 0
        self.limit = limit
        self.period = period
        self.idle_noted = 0

    def tick(self):
        if self.sent < self.limit and self.cycle % self.period == 0:
            if self.out.can_push():
                self.out.push(self.sent)
                self.sent += 1
        elif self.sent < self.limit:
            self.idle_noted += 1  # per-cycle bookkeeping, reproduced by skip()

    def finished(self):
        return self.sent >= self.limit

    def next_activity(self):
        if self.sent >= self.limit:
            return None
        now = self.sim.cycle
        if now % self.period == 0:
            return now
        return now + (self.period - now % self.period)

    def skip(self, cycles):
        if self.sent < self.limit:
            self.idle_noted += cycles

    def skip_digest(self):
        return (self.sent,)


class Sink(Component):
    """Pops everything available."""

    def __init__(self, sim, source):
        super().__init__(sim, "sink")
        self.source = source
        self.received = []

    def tick(self):
        if self.source.can_pop():
            self.received.append((self.cycle, self.source.pop()))

    def finished(self):
        return not self.source.can_pop()

    def next_activity(self):
        return self.sim.cycle if self.source.can_pop() else None

    def skip_digest(self):
        return (len(self.received),)


class LyingProducer(LatencyProducer):
    """Claims to be idle for twice its real period (an unsound horizon)."""

    def next_activity(self):
        if self.sent >= self.limit:
            return None
        now = self.sim.cycle
        if now % self.period == 0:
            return now
        # Lies: reports the wake-up one full period too late.
        return now + (2 * self.period - now % self.period)


def build(engine, producer_cls=LatencyProducer, limit=6, period=25):
    sim = Simulator("t", engine=engine)
    producer = producer_cls(sim, limit=limit, period=period)
    sink = Sink(sim, producer.out)
    return sim, producer, sink


class TestEngineModes:
    def test_default_engine_is_fast(self):
        assert default_engine() == "fast"
        assert Simulator().engine == "fast"

    def test_engine_override_and_validation(self):
        assert Simulator(engine="naive").engine == "naive"
        with pytest.raises(ValueError):
            Simulator(engine="warp")

    def test_set_default_engine_roundtrip(self):
        previous = set_default_engine("naive")
        try:
            assert default_engine() == "naive"
            assert Simulator().engine == "naive"
        finally:
            set_default_engine(previous)
        assert default_engine() == previous

    def test_set_default_engine_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_default_engine("warp")

    def test_engine_modes_constant(self):
        assert set(ENGINE_MODES) == {"fast", "naive", "debug"}


class TestFastParity:
    @pytest.mark.parametrize("engine", ["fast", "debug"])
    def test_run_until_matches_naive(self, engine):
        sim_n, prod_n, sink_n = build("naive")
        sim_f, prod_f, sink_f = build(engine)
        sim_n.run_until(lambda: len(sink_n.received) == 6, max_cycles=1000)
        sim_f.run_until(lambda: len(sink_f.received) == 6, max_cycles=1000)
        assert sim_f.cycle == sim_n.cycle
        assert sink_f.received == sink_n.received
        # per-cycle bookkeeping batched by skip() matches naive accrual
        assert prod_f.idle_noted == prod_n.idle_noted

    @pytest.mark.parametrize("engine", ["fast", "debug"])
    def test_run_until_idle_matches_naive(self, engine):
        sim_n, _, sink_n = build("naive")
        sim_f, _, sink_f = build(engine)
        sim_n.run_until_idle(max_cycles=1000)
        sim_f.run_until_idle(max_cycles=1000)
        assert sim_f.cycle == sim_n.cycle
        assert sink_f.received == sink_n.received

    def test_fast_engine_actually_skips(self):
        sim, _, sink = build("fast")
        sim.run_until(lambda: len(sink.received) == 6, max_cycles=1000)
        stats = sim.run_stats()
        assert stats["cycles_skipped"] > 0
        assert stats["skip_regions"] > 0
        assert stats["skip_ratio"] > 0.5
        assert stats["ticks_executed"] + stats["cycles_skipped"] == sim.cycle

    def test_naive_engine_never_skips(self):
        sim, _, sink = build("naive")
        sim.run_until(lambda: len(sink.received) == 6, max_cycles=1000)
        stats = sim.run_stats()
        assert stats["cycles_skipped"] == 0
        assert stats["skip_ratio"] == 0.0
        assert stats["ticks_executed"] == sim.cycle

    def test_timeout_budget_and_stall_accounting_match_naive(self):
        # A producer that never finishes: both engines must raise at exactly
        # max_cycles with identical per-cycle bookkeeping.
        sim_n, prod_n, _ = build("naive", limit=10**9)
        sim_f, prod_f, _ = build("fast", limit=10**9)
        for sim in (sim_n, sim_f):
            with pytest.raises(SimulationError):
                sim.run_until(lambda: False, max_cycles=200)
        assert sim_f.cycle == sim_n.cycle == 200
        assert prod_f.idle_noted == prod_n.idle_noted

    def test_check_every_keeps_naive_batching(self):
        # check_every > 1 documents literal sampling semantics; the fast
        # engine defers to the naive loop there.
        sim, _, sink = build("fast")
        cycles = sim.run_until(
            lambda: len(sink.received) == 6, max_cycles=1000, check_every=8
        )
        assert cycles % 8 == 0
        assert sim.run_stats()["cycles_skipped"] == 0

    def test_reset_clears_efficiency_counters(self):
        sim, _, sink = build("fast")
        sim.run_until(lambda: len(sink.received) == 6, max_cycles=1000)
        sim.reset()
        stats = sim.run_stats()
        assert stats["ticks_executed"] == 0
        assert stats["cycles_skipped"] == 0
        assert sim.cycle == 0

    def test_external_push_wakes_idle_system(self):
        # Everything is idle; a testbench pushes directly into a channel
        # between cycles.  The staged update must force an executed cycle.
        sim = Simulator(engine="fast")
        ch = sim.create_channel("stim", 4)
        sink = Sink(sim, ch)
        ch.push("hello")
        sim.run_until(lambda: len(sink.received) == 1, max_cycles=50)
        assert sink.received[0][1] == "hello"


class TestDebugCrossCheck:
    def test_debug_mode_catches_lying_next_activity(self):
        sim, _, sink = build("debug", producer_cls=LyingProducer)
        with pytest.raises(SimulationError, match="dead region|under-report"):
            sim.run_until(lambda: len(sink.received) == 6, max_cycles=1000)

    def test_fast_mode_would_miss_the_lie(self):
        # The same lie silently corrupts scheduling under "fast" — which is
        # exactly why the debug engine exists for new components.
        sim, _, sink = build("fast", producer_cls=LyingProducer)
        sim.run_until_idle(max_cycles=10_000)
        sim_ok, _, sink_ok = build("naive", producer_cls=LatencyProducer)
        sim_ok.run_until_idle(max_cycles=10_000)
        assert sim.cycle != sim_ok.cycle

    def test_debug_mode_passes_for_honest_components(self):
        sim, _, sink = build("debug")
        sim.run_until_idle(max_cycles=1000)
        assert [v for _, v in sink.received] == list(range(6))
