"""Tests for repro.sim.fsm, repro.sim.stats and repro.sim.trace."""

import pytest

from repro.sim.fsm import FSM
from repro.sim.stats import StatsCollector
from repro.sim.trace import TraceLog


class TestFSM:
    def test_starts_in_initial_state(self):
        fsm = FSM("f", ["A", "B"], "A")
        assert fsm.is_in("A")
        assert not fsm.is_in("B")

    def test_transition(self):
        fsm = FSM("f", ["A", "B"], "A")
        fsm.go("B", cycle=4)
        assert fsm.is_in("B")
        assert fsm.transition_count == 1
        assert fsm.history == [(4, "B")]

    def test_self_transition_not_counted(self):
        fsm = FSM("f", ["A", "B"], "A")
        fsm.go("A")
        assert fsm.transition_count == 0

    def test_unknown_state_rejected(self):
        fsm = FSM("f", ["A"], "A")
        with pytest.raises(ValueError):
            fsm.go("Z")
        with pytest.raises(ValueError):
            fsm.is_in("Z")

    def test_unknown_initial_rejected(self):
        with pytest.raises(ValueError):
            FSM("f", ["A"], "B")

    def test_duplicate_states_rejected(self):
        with pytest.raises(ValueError):
            FSM("f", ["A", "A"], "A")

    def test_occupancy_counters(self):
        fsm = FSM("f", ["A", "B"], "A")
        fsm.tick()
        fsm.tick()
        fsm.go("B")
        fsm.tick()
        assert fsm.occupancy() == {"A": 2, "B": 1}

    def test_state_register_bits(self):
        assert FSM("f", ["A", "B"], "A").state_register_bits == 1
        assert FSM("f", ["A", "B", "C"], "A").state_register_bits == 2
        assert FSM("f", ["A", "B", "C", "D", "E"], "A").state_register_bits == 3

    def test_reset(self):
        fsm = FSM("f", ["A", "B"], "A")
        fsm.go("B")
        fsm.tick()
        fsm.reset()
        assert fsm.is_in("A")
        assert fsm.transition_count == 0
        assert fsm.occupancy()["B"] == 0


class TestStatsCollector:
    def test_incr_and_get(self):
        stats = StatsCollector()
        stats.incr("x")
        stats.incr("x", 4)
        assert stats.get("x") == 5
        assert stats.get("missing") == 0

    def test_set_overwrites(self):
        stats = StatsCollector()
        stats.incr("x", 3)
        stats.set("x", 10)
        assert stats.get("x") == 10

    def test_histogram(self):
        stats = StatsCollector()
        stats.observe("lat", 3)
        stats.observe("lat", 3)
        stats.observe("lat", 5)
        assert stats.histogram("lat") == {3: 2, 5: 1}

    def test_merge(self):
        a, b = StatsCollector("a"), StatsCollector("b")
        a.incr("x", 2)
        b.incr("x", 3)
        b.observe("h", 1)
        a.merge(b)
        assert a.get("x") == 5
        assert a.histogram("h") == {1: 1}

    def test_reset(self):
        stats = StatsCollector()
        stats.incr("x")
        stats.reset()
        assert stats.counters() == {}


class TestTraceLog:
    def test_record_and_query(self):
        trace = TraceLog()
        trace.record(1, "smache", "start_work_instance", 0)
        trace.record(5, "smache", "prefetch_done")
        trace.record(9, "sequencer", "launch_instance", 1)
        assert len(trace) == 3
        assert trace.count("launch_instance") == 1
        assert trace.first("prefetch_done").cycle == 5
        assert trace.cycles_of("start_work_instance") == [1]
        assert len(trace.events(source="smache")) == 2

    def test_disabled_log_records_nothing(self):
        trace = TraceLog(enabled=False)
        trace.record(1, "x", "e")
        assert len(trace) == 0

    def test_max_events_drops_overflow(self):
        trace = TraceLog(max_events=2)
        for i in range(5):
            trace.record(i, "x", "e")
        assert len(trace) == 2
        assert trace.dropped == 3

    def test_predicate_filter(self):
        trace = TraceLog()
        for i in range(10):
            trace.record(i, "x", "e", payload=i)
        late = trace.events(predicate=lambda e: e.cycle >= 7)
        assert len(late) == 3

    def test_format_and_clear(self):
        trace = TraceLog()
        trace.record(1, "x", "e", payload={"a": 1})
        text = trace.format()
        assert "e" in text and "x" in text
        trace.clear()
        assert len(trace) == 0
