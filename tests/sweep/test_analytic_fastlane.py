"""The runners' analytic fast lane must be invisible in canonical output.

Runs of consecutive ``analytic`` points are priced in one vectorized call
(:mod:`repro.pipeline.analytic_batch`); ``REPRO_ANALYTIC_BATCH=0`` restores
the per-point scalar loop.  The contract tested here: canonical campaign
JSON is byte-identical either way (serial and pooled), every point still
gets exactly one ``PointStarted`` and one ``PointCompleted``, batch
attribution lands in ``meta``, and the lane steps aside for mixed-backend
spans, singleton runs, and stand-in backends registered under ``analytic``.
"""

import pytest

from repro.api import Workbench
from repro.pipeline import StencilProblem, register_backend
from repro.pipeline.backends import AnalyticBackend, get_backend
from repro.sweep.events import PointCompleted, PointStarted
from repro.sweep.record import canonical_json
from repro.sweep.runners import ProcessPoolRunner, SerialRunner, _split_spans
from repro.sweep.spec import SweepSpec, smoke_spec
from repro.sweep.strategies import SuccessiveHalving


@pytest.fixture(scope="module")
def points():
    return smoke_spec(iterations=2).expand()


def scalar_reference(monkeypatch, runner, points, **kwargs):
    """Run with the lane disabled: the per-point scalar loop."""
    monkeypatch.setenv("REPRO_ANALYTIC_BATCH", "0")
    try:
        return runner.run(points, **kwargs)
    finally:
        monkeypatch.delenv("REPRO_ANALYTIC_BATCH", raising=False)


class TestByteIdentity:
    def test_serial_fast_lane_matches_scalar(self, points, monkeypatch):
        scalar = scalar_reference(monkeypatch, SerialRunner(), points)
        fast = SerialRunner().run(points)
        assert canonical_json(fast) == canonical_json(scalar)

    def test_pool_fast_lane_matches_scalar(self, points, monkeypatch):
        scalar = scalar_reference(monkeypatch, SerialRunner(), points)
        fast = ProcessPoolRunner(jobs=2).run(points)
        assert canonical_json(fast) == canonical_json(scalar)

    def test_records_stay_in_input_order(self, points):
        records = SerialRunner().run(points)
        assert [r.key for r in records] == [p.key() for p in points]

    def test_halving_campaign_matches_scalar(self, monkeypatch):
        spec = SweepSpec(
            name="halving-lane",
            base=StencilProblem.paper_example(11, 11),
            grid_sizes=((11, 11), (13, 13), (15, 15), (17, 17)),
            iterations=1,
        )
        monkeypatch.setenv("REPRO_ANALYTIC_BATCH", "0")
        scalar = Workbench().run(
            spec, strategy=SuccessiveHalving(eta=2, verify_backend="analytic")
        )
        monkeypatch.setenv("REPRO_ANALYTIC_BATCH", "1")
        fast = Workbench().run(
            spec, strategy=SuccessiveHalving(eta=2, verify_backend="analytic")
        )
        assert canonical_json(fast.records) == canonical_json(scalar.records)


class TestBatchAttribution:
    def test_serial_meta_carries_batch_stamps(self, points):
        records = SerialRunner().run(points)
        sizes = {r.meta["batch_size"] for r in records}
        assert sizes == {len(points)}
        assert [r.meta["batch_index"] for r in records] == list(range(len(points)))
        # Attribution stamps are still per point.
        seqs = [r.meta["worker_seq"] for r in records]
        assert seqs == sorted(seqs)
        assert all("started_ts" in r.meta and "finished_ts" in r.meta for r in records)

    def test_pool_meta_carries_batch_stamps(self, points):
        # Cost-balanced chunking may isolate a heavy point into a singleton
        # chunk, which correctly stays scalar — but most points ride the lane.
        records = ProcessPoolRunner(jobs=2).run(points)
        batched = [r for r in records if "batch_size" in r.meta]
        assert len(batched) > len(records) // 2
        for record in batched:
            assert record.meta["batch_size"] >= 2
            assert 0 <= record.meta["batch_index"] < record.meta["batch_size"]

    def test_scalar_path_has_no_batch_stamps(self, points, monkeypatch):
        records = scalar_reference(monkeypatch, SerialRunner(), points[:3])
        assert all("batch_size" not in r.meta for r in records)


class TestEvents:
    def test_one_start_and_one_completion_per_point(self, points):
        events = []
        runner = SerialRunner()
        runner.event_sink = events.append
        runner.run(points)
        started = [e for e in events if isinstance(e, PointStarted)]
        completed = [e for e in events if isinstance(e, PointCompleted)]
        assert len(started) == len(points)
        assert len(completed) == len(points)
        assert [e.key for e in started] == [p.key() for p in points]
        assert [e.record.key for e in completed] == [p.key() for p in points]
        # Start events carry real attribution from the begin stamps.
        assert all(e.worker is not None and e.ts is not None for e in started)

    def test_pool_replays_faithful_starts(self, points):
        events = []
        runner = ProcessPoolRunner(jobs=2)
        runner.event_sink = events.append
        runner.run(points)
        started = [e for e in events if isinstance(e, PointStarted)]
        completed = [e for e in events if isinstance(e, PointCompleted)]
        assert sorted(e.key for e in started) == sorted(p.key() for p in points)
        assert len(completed) == len(points)
        assert all(e.worker is not None and e.seq is not None for e in started)

    def test_on_result_sees_every_record(self, points):
        seen = []
        SerialRunner().run(points, on_result=seen.append)
        assert [r.key for r in seen] == [p.key() for p in points]


class TestLaneBoundaries:
    def test_mixed_backend_spans(self):
        """``analytic``/``cost`` alternation cuts the lane into scalar runs."""
        spec = SweepSpec(
            name="mixed",
            base=StencilProblem.paper_example(11, 11),
            grid_sizes=((11, 11), (13, 13)),
            backends=("analytic", "cost"),
            iterations=1,
        )
        points = spec.expand()
        spans = _split_spans(points)
        # Backends expand innermost: every analytic run has length 1, so the
        # whole list stays scalar.
        assert all(kind == "scalar" for kind, _ in spans)
        records = SerialRunner().run(points)
        assert [r.key for r in records] == [p.key() for p in points]
        assert all("batch_size" not in r.meta for r in records)

    def test_mixed_system_batch_stays_vectorized(self, monkeypatch):
        """smache/baseline pairs are one span: grouping happens in the engine."""
        spec = SweepSpec(
            name="systems",
            base=StencilProblem.paper_example(11, 11),
            grid_sizes=((11, 11), (13, 13)),
            systems=("smache", "baseline"),
            iterations=1,
        )
        points = spec.expand()
        spans = _split_spans(points)
        assert [(kind, len(span)) for kind, span in spans] == [("batch", 4)]
        fast = SerialRunner().run(points)
        scalar = scalar_reference(monkeypatch, SerialRunner(), points)
        assert canonical_json(fast) == canonical_json(scalar)

    def test_singleton_analytic_run_stays_scalar(self, points):
        spans = _split_spans(points[:1])
        assert spans == [("scalar", [points[0]])]

    def test_stand_in_backend_disables_the_lane(self, points):
        """A test double registered as ``analytic`` must be called per point."""
        calls = []

        class CountingBackend(AnalyticBackend):
            def evaluate(self, design, request):
                calls.append(design)
                return super().evaluate(design, request)

        real = type(get_backend("analytic"))
        register_backend("analytic", CountingBackend)
        try:
            assert _split_spans(points) == [("scalar", list(points))]
            SerialRunner().run(points[:3])
            assert len(calls) == 3
        finally:
            register_backend("analytic", real)

    def test_env_switch_disables_the_lane(self, points, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYTIC_BATCH", "off")
        assert _split_spans(points) == [("scalar", list(points))]


class TestKeepResults:
    def test_serial_keeps_prediction_artifacts(self, points):
        records = SerialRunner().run(points[:4], keep_results=True)
        for record in records:
            assert record.result is not None
            assert record.result.cycles == record.cycles
            assert "prediction" in record.result.artifacts

    def test_pool_strips_artifacts(self, points):
        records = ProcessPoolRunner(jobs=2).run(points[:4], keep_results=True)
        for record in records:
            assert record.result is not None
            assert record.result.artifacts == {}

    def test_slim_records_by_default(self, points):
        records = SerialRunner().run(points[:4])
        assert all(r.result is None for r in records)
