"""Campaign orchestration tests: determinism, Pareto ties, cache reporting,
adaptive strategies and the command line."""

import pytest

from repro.core.partition import StreamBufferMode
from repro.pipeline import StencilProblem
from repro.sweep.campaign import CampaignResult, pareto_front_records, run_campaign
from repro.sweep.record import PointRecord
from repro.sweep.spec import SweepSpec, smoke_spec
from repro.sweep.strategies import (
    GridSearch,
    RandomSearch,
    SuccessiveHalving,
    get_strategy,
    ranking_metric,
)


def record(key, cycles, bits, label=None, rung=0, backend="analytic"):
    return PointRecord(
        key=key,
        label=label or key,
        backend=backend,
        system="smache",
        cycles=cycles,
        total_bits=bits,
        rung=rung,
    )


class TestParetoTieBreaking:
    def test_dominated_points_are_dropped(self):
        records = [record("a", 10, 10), record("b", 20, 20), record("c", 5, 30)]
        front = pareto_front_records(records)
        assert [r.key for r in front] == ["a", "c"]

    def test_exact_ties_both_survive(self):
        """Neither of two identical points dominates the other."""
        records = [record("a", 10, 10), record("b", 10, 10), record("c", 30, 5)]
        front = pareto_front_records(records)
        assert [r.key for r in front] == ["a", "b", "c"]

    def test_tie_on_one_axis_only(self):
        # Same cycles, strictly more memory: dominated.
        records = [record("a", 10, 10), record("b", 10, 11)]
        assert [r.key for r in pareto_front_records(records)] == ["a"]

    def test_records_without_timing_are_excluded(self):
        records = [record("a", None, 10), record("b", 10, 10)]
        assert [r.key for r in pareto_front_records(records)] == ["b"]

    def test_best_breaks_metric_ties_by_key(self):
        result = CampaignResult(
            spec=smoke_spec(), records=[record("zz", 10, 10), record("aa", 10, 10)]
        )
        assert result.best().key == "aa"
        # And the ranking metric itself ends with the key.
        assert ranking_metric(record("aa", 10, 10))[-1] == "aa"


class TestCampaignDeterminism:
    def test_parallel_campaign_is_byte_identical_to_serial(self):
        """Acceptance: jobs=N must not change the campaign's canonical output."""
        spec = smoke_spec(iterations=2)
        serial = run_campaign(spec, jobs=1)
        parallel = run_campaign(spec, jobs=2)
        assert serial.to_json() == parallel.to_json()
        assert serial.canonical_rows() == parallel.canonical_rows()

    def test_canonical_rows_exclude_run_specific_meta(self):
        result = run_campaign(smoke_spec(iterations=1))
        for row in result.canonical_rows():
            assert "meta" not in row and "wall_seconds" not in row


class TestCacheReporting:
    def test_cache_info_is_surfaced_in_result_and_report(self):
        from repro.pipeline import clear_plan_cache

        clear_plan_cache()  # the suite shares the process-global cache
        spec = SweepSpec(
            name="cache",
            base=StencilProblem.paper_example(11, 11),
            # Two systems share one compiled design: the second evaluation of
            # each problem must be a plan-cache hit.
            grid_sizes=((11, 11), (16, 16)),
            systems=("smache", "baseline"),
            iterations=1,
        )
        result = run_campaign(spec)
        info = result.cache_info()
        assert info.misses == 2
        assert info.hits == 2
        assert "plan cache: 2 hits / 2 misses" in result.format()

    def test_parallel_cache_counters_cover_all_points(self):
        spec = smoke_spec(iterations=1)
        result = run_campaign(spec, jobs=2)
        info = result.cache_info()
        assert info.hits + info.misses == spec.size

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_multi_rung_cache_counters_cover_both_rungs(self, jobs):
        """Counters from every runner invocation are summed, serial or parallel."""
        spec = smoke_spec(iterations=1)
        result = run_campaign(spec, jobs=jobs, strategy=SuccessiveHalving(eta=2))
        info = result.cache_info()
        assert info.hits + info.misses == result.size


class TestStrategies:
    def test_random_search_is_seed_deterministic(self):
        spec = smoke_spec(iterations=1)
        a = run_campaign(spec, strategy=RandomSearch(samples=5, seed=7))
        b = run_campaign(spec, strategy=RandomSearch(samples=5, seed=7))
        c = run_campaign(spec, strategy=RandomSearch(samples=5, seed=8))
        assert a.size == 5
        assert a.to_json() == b.to_json()
        assert {r.key for r in a.records} != {r.key for r in c.records}

    def test_random_search_with_enough_samples_is_exhaustive(self):
        spec = smoke_spec(iterations=1)
        result = run_campaign(spec, strategy=RandomSearch(samples=10_000))
        assert result.size == spec.size

    def test_successive_halving_simulates_only_survivors(self):
        spec = smoke_spec(iterations=1)
        result = run_campaign(spec, strategy=SuccessiveHalving(eta=3))
        priced = [r for r in result.records if r.rung == 0]
        verified = [r for r in result.records if r.rung == 1]
        assert len(priced) == spec.size
        assert all(r.backend == "analytic" for r in priced)
        assert all(r.backend == "simulate" for r in verified)
        assert len(verified) == -(-spec.size // 3)  # ceil division
        # The winner comes from the cycle-accurate rung.
        assert result.best().backend == "simulate"
        # Survivors are the analytically best points.
        best_priced = sorted(priced, key=ranking_metric)[: len(verified)]
        assert {r.label for r in verified} == {r.label for r in best_priced}

    def test_halving_dedups_multi_backend_specs(self):
        """Forcing the pricing backend must not double-evaluate collapsed points."""
        spec = SweepSpec(
            name="multi",
            base=StencilProblem.paper_example(11, 11),
            grid_sizes=((11, 11), (13, 13), (15, 15), (17, 17)),
            backends=("analytic", "simulate"),
            iterations=1,
        )
        result = run_campaign(spec, strategy=SuccessiveHalving(eta=2))
        priced = [r for r in result.records if r.rung == 0]
        verified = [r for r in result.records if r.rung == 1]
        assert len(priced) == 4  # one per problem, not one per (problem, backend)
        assert len({r.key for r in priced}) == 4
        assert len({r.label for r in verified}) == len(verified) == 2

    def test_duplicate_points_evaluate_once(self):
        problem = StencilProblem.paper_example(11, 11)
        spec = SweepSpec.from_problems([problem, problem], name="dup", iterations=1)
        result = run_campaign(spec)
        assert result.size == 2  # both slots filled...
        assert result.evaluated == 1  # ...from a single evaluation
        assert result.records[0].key == result.records[1].key

    def test_halving_resumes_deterministically(self, tmp_path):
        spec = smoke_spec(iterations=1)
        path = str(tmp_path / "halving.jsonl")
        first = run_campaign(spec, strategy=SuccessiveHalving(), checkpoint=path)
        second = run_campaign(spec, strategy=SuccessiveHalving(), checkpoint=path)
        assert second.evaluated == 0
        assert second.resumed == first.size
        assert second.to_json() == first.to_json()

    def test_get_strategy(self):
        assert isinstance(get_strategy("grid"), GridSearch)
        assert isinstance(get_strategy("random", samples=3), RandomSearch)
        assert isinstance(get_strategy("halving", eta=4), SuccessiveHalving)
        with pytest.raises(KeyError):
            get_strategy("annealing")

    def test_strategy_parameter_validation(self):
        with pytest.raises(ValueError):
            RandomSearch(samples=0)
        with pytest.raises(ValueError):
            SuccessiveHalving(eta=1)
        with pytest.raises(ValueError):
            SuccessiveHalving(min_survivors=0)


class TestCampaignResultApi:
    @pytest.fixture(scope="class")
    def result(self):
        return run_campaign(smoke_spec(iterations=2), jobs=1)

    def test_report_mentions_counts_and_best(self, result):
        text = result.format()
        assert f"{result.size} points" in text
        assert "plan cache" in text
        assert "<==" in text

    def test_report_row_limit(self, result):
        text = result.format(max_rows=2)
        assert "more rows" in text

    def test_pareto_front_is_sorted_and_nonempty(self, result):
        front = result.pareto_front()
        assert front
        assert [ranking_metric(r) for r in front] == sorted(
            ranking_metric(r) for r in front
        )

    def test_best_of_empty_campaign(self):
        assert CampaignResult(spec=smoke_spec()).best() is None
        assert CampaignResult(spec=smoke_spec()).final_rung() == []


class TestCommandLine:
    def test_cli_smoke_run_and_resume(self, tmp_path, capsys):
        from repro.sweep.__main__ import main

        path = str(tmp_path / "cli.jsonl")
        assert main(["--jobs", "2", "--checkpoint", path]) == 0
        assert main(["--jobs", "2", "--checkpoint", path]) == 0
        out = capsys.readouterr().out
        assert "18 evaluated, 0 resumed" in out
        assert "0 evaluated, 18 resumed" in out

    def test_cli_backends_flag_overrides_the_smoke_spec(self, capsys):
        """--backends alone must not fall back to the analytic smoke campaign."""
        from repro.sweep.__main__ import main

        assert main(["--backends", "simulate", "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "simulate" in out and "analytic" not in out

    def test_cli_explicit_axes_and_strategy(self, capsys):
        from repro.sweep.__main__ import main

        assert main(
            [
                "--grids", "11x11,16x16",
                "--reaches", "0,none",
                "--modes", "hybrid",
                "--strategy", "halving",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "strategy=halving" in out
