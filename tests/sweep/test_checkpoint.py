"""Checkpoint persistence and resume-after-interruption tests."""

import json

import pytest

from repro.sweep.campaign import run_campaign
from repro.sweep.checkpoint import CampaignCheckpoint, CheckpointMismatch
from repro.sweep.runners import SerialRunner
from repro.sweep.spec import smoke_spec


class InterruptedRun(RuntimeError):
    """Raised by the crashing runner to simulate a killed campaign."""


class CrashingRunner(SerialRunner):
    """A serial runner that dies after ``crash_after`` completed points."""

    def __init__(self, crash_after: int) -> None:
        self.crash_after = crash_after
        self.completed = 0

    def run(self, points, on_result=None, keep_results=False):
        def counting(record):
            if self.completed >= self.crash_after:
                raise InterruptedRun(f"killed after {self.completed} points")
            if on_result is not None:
                on_result(record)
            self.completed += 1
        return super().run(points, on_result=counting, keep_results=keep_results)


class CountingRunner(SerialRunner):
    """A serial runner that counts how many points it actually evaluates."""

    def __init__(self) -> None:
        self.evaluated = 0

    def run(self, points, on_result=None, keep_results=False):
        self.evaluated += len(points)
        return super().run(points, on_result=on_result, keep_results=keep_results)


@pytest.fixture()
def spec():
    return smoke_spec(iterations=2)


class TestCheckpointResume:
    def test_interrupted_campaign_resumes_without_reevaluation(self, spec, tmp_path):
        """The acceptance scenario: kill mid-way, restart, nothing runs twice."""
        path = str(tmp_path / "campaign.jsonl")
        total = spec.size
        crash_after = total // 2

        with pytest.raises(InterruptedRun):
            run_campaign(spec, checkpoint=path, runner=CrashingRunner(crash_after))

        # The checkpoint holds exactly the completed prefix.
        persisted = CampaignCheckpoint(path).load(spec)
        assert len(persisted) == crash_after

        counting = CountingRunner()
        resumed = run_campaign(spec, checkpoint=path, runner=counting)
        assert counting.evaluated == total - crash_after
        assert resumed.evaluated == total - crash_after
        assert resumed.resumed == crash_after

        uninterrupted = run_campaign(spec)
        assert resumed.to_json() == uninterrupted.to_json()

    def test_complete_checkpoint_resumes_everything(self, spec, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        first = run_campaign(spec, checkpoint=path)
        counting = CountingRunner()
        second = run_campaign(spec, checkpoint=path, runner=counting)
        assert first.evaluated == spec.size
        assert counting.evaluated == 0
        assert second.resumed == spec.size
        assert second.to_json() == first.to_json()

    def test_truncated_tail_line_is_dropped(self, spec, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        run_campaign(spec, checkpoint=path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "record", "key": "truncat')  # hard-kill artefact
        store = CampaignCheckpoint(path)
        records = store.load(spec)
        assert len(records) == spec.size
        assert store.dropped_lines == 1

    def test_resume_after_truncated_tail_does_not_glue_records(self, spec, tmp_path):
        """A fragment from a hard kill must not swallow the next appended record."""
        path = str(tmp_path / "campaign.jsonl")
        run_campaign(spec, checkpoint=path)
        # Simulate a kill mid-append: drop the finished marker (a killed
        # campaign never writes one), then drop the last record's full line
        # and leave a partial one without a trailing newline.
        with open(path, encoding="utf-8") as fh:
            lines = [l for l in fh.read().splitlines() if '"kind": "finished"' not in l]
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])

        first_resume = run_campaign(spec, checkpoint=path)
        assert first_resume.evaluated == 1  # only the truncated point re-runs

        second_resume = run_campaign(spec, checkpoint=path)
        assert second_resume.evaluated == 0
        assert second_resume.resumed == spec.size

    def test_fingerprint_mismatch_is_refused(self, spec, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        run_campaign(spec, checkpoint=path)
        other = smoke_spec(iterations=5)  # different campaign, same file
        with pytest.raises(CheckpointMismatch):
            run_campaign(other, checkpoint=path)

    def test_header_written_once(self, spec, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        run_campaign(spec, checkpoint=path)
        run_campaign(spec, checkpoint=path)
        with open(path, encoding="utf-8") as fh:
            kinds = [json.loads(line)["kind"] for line in fh if line.strip()]
        assert kinds.count("header") == 1
        assert kinds.count("record") == spec.size

    def test_append_requires_open(self, tmp_path):
        store = CampaignCheckpoint(str(tmp_path / "x.jsonl"))
        with pytest.raises(RuntimeError):
            store.append(None)

    def test_missing_file_loads_empty(self, spec, tmp_path):
        store = CampaignCheckpoint(str(tmp_path / "missing.jsonl"))
        assert store.load(spec) == {}

    def test_parallel_resume_matches_serial(self, spec, tmp_path):
        """A checkpoint written serially is consumed by a parallel run."""
        path = str(tmp_path / "campaign.jsonl")
        crash_after = 5
        with pytest.raises(InterruptedRun):
            run_campaign(spec, checkpoint=path, runner=CrashingRunner(crash_after))
        resumed = run_campaign(spec, checkpoint=path, jobs=2)
        assert resumed.resumed == crash_after
        assert resumed.to_json() == run_campaign(spec).to_json()
