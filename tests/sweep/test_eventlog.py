"""Durable event-log persistence, deterministic replay and worker attribution."""

import io
import json
import os

import pytest

from repro.api import Workbench
from repro.sweep.__main__ import main
from repro.sweep.campaign import execute_campaign
from repro.sweep.eventlog import (
    EVENT_LOG_FORMAT,
    CampaignReplay,
    EventLogMismatch,
    EventLogObserver,
    default_event_log_path,
    event_from_payload,
)
from repro.sweep.events import (
    CampaignFinished,
    CampaignStarted,
    PointCompleted,
    PointResumed,
    PointStarted,
    ProgressReporter,
)
from repro.sweep.follow import follow_campaign, follow_event_log
from repro.sweep.spec import smoke_spec


@pytest.fixture()
def spec():
    return smoke_spec(iterations=1)


def log_lines(path):
    with open(path, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


class TestEventLogWriting:
    def test_header_is_fingerprint_guarded_and_versioned(self, spec, tmp_path):
        path = str(tmp_path / "log.events.jsonl")
        execute_campaign(spec, event_log=path)
        header = log_lines(path)[0]
        assert header["kind"] == "header"
        assert header["log"] == "events"
        assert header["format"] == EVENT_LOG_FORMAT
        assert header["fingerprint"] == spec.fingerprint()
        assert header["total_points"] == spec.size
        assert header["strategy"] == "grid"

    def test_every_event_lands_with_seq_and_ts(self, spec, tmp_path):
        path = str(tmp_path / "log.events.jsonl")
        checkpoint = str(tmp_path / "cp.jsonl")
        execute_campaign(spec, checkpoint=checkpoint, event_log=path)
        events = [p for p in log_lines(path) if p["kind"] != "header"]
        kinds = [p["kind"] for p in events]
        assert kinds[0] == "campaign_started"
        assert kinds[-1] == "campaign_finished"
        assert kinds.count("point_started") == spec.size
        assert kinds.count("point_completed") == spec.size
        assert kinds.count("checkpoint_flushed") == spec.size
        assert [p["seq"] for p in events] == list(range(1, len(events) + 1))
        assert all(isinstance(p["ts"], float) for p in events)

    def test_point_events_carry_worker_attribution(self, spec, tmp_path):
        path = str(tmp_path / "attr.events.jsonl")
        execute_campaign(spec, event_log=path, jobs=2)
        payloads = log_lines(path)
        starts = {
            p["data"]["key"]: p["data"]
            for p in payloads
            if p["kind"] == "point_started"
        }
        completions = [p["data"]["record"] for p in payloads if p["kind"] == "point_completed"]
        assert len(completions) == spec.size
        for record in completions:
            start = starts[record["key"]]
            meta = record["meta"]
            # The start was re-emitted from the worker's own begin stamp.
            assert start["worker"] == meta["worker"]
            assert start["ts"] == meta["started_ts"]
            assert start["seq"] == meta["worker_seq"]
            assert meta["finished_ts"] >= meta["started_ts"]

    def test_fingerprint_mismatch_is_refused(self, spec, tmp_path):
        path = str(tmp_path / "guard.events.jsonl")
        execute_campaign(spec, event_log=path)
        other = smoke_spec(iterations=2)  # different space, different fingerprint
        with pytest.raises(EventLogMismatch, match="refusing"):
            execute_campaign(other, event_log=path)
        # The refused campaign appended nothing.
        kinds = [p["kind"] for p in log_lines(path)]
        assert kinds.count("campaign_started") == 1

    def test_resume_appends_a_second_session(self, spec, tmp_path):
        log = str(tmp_path / "resume.events.jsonl")
        checkpoint = str(tmp_path / "resume.jsonl")
        execute_campaign(spec, checkpoint=checkpoint, event_log=log)
        execute_campaign(spec, checkpoint=checkpoint, event_log=log)
        payloads = log_lines(log)
        kinds = [p["kind"] for p in payloads]
        assert kinds.count("header") == 1  # one file, one guard
        assert kinds.count("campaign_started") == 2
        assert kinds.count("point_resumed") == spec.size
        # seq stays monotonic across appended sessions.
        seqs = [p["seq"] for p in payloads if p["kind"] != "header"]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_torn_trailing_line_is_terminated_on_reopen(self, spec, tmp_path):
        log = str(tmp_path / "torn.events.jsonl")
        checkpoint = str(tmp_path / "torn.jsonl")
        execute_campaign(spec, checkpoint=checkpoint, event_log=log)
        with open(log, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "point_sta')  # a killed writer's fragment
        execute_campaign(spec, checkpoint=checkpoint, event_log=log)
        # The fragment was newline-terminated (readers drop it as corrupt)
        # and the second session's lines parse cleanly after it.
        from repro.sweep.checkpoint import iter_jsonl

        kinds = [p["kind"] for p in iter_jsonl(log)]
        assert kinds.count("campaign_started") == 2
        assert kinds[-1] == "campaign_finished"

    def test_two_campaigns_cannot_append_to_one_event_log(self, spec, tmp_path):
        pytest.importorskip("fcntl")
        path = str(tmp_path / "locked.events.jsonl")
        first = EventLogObserver(path)
        first.open(name=spec.name, fingerprint=spec.fingerprint())
        try:
            second = EventLogObserver(path)
            with pytest.raises(RuntimeError, match="already open"):
                second.open(name=spec.name, fingerprint=spec.fingerprint())
        finally:
            first.close()
        # Released: a fresh session appends normally.
        execute_campaign(spec, event_log=path)
        assert [p["kind"] for p in log_lines(path)][-1] == "campaign_finished"

    def test_mismatch_releases_the_checkpoint_lock(self, spec, tmp_path):
        """A refused event log must not leave the checkpoint flocked: the
        corrected retry (and compaction) must succeed in-process."""
        from repro.sweep.checkpoint import CampaignCheckpoint

        log = str(tmp_path / "other.events.jsonl")
        execute_campaign(smoke_spec(iterations=2), event_log=log)
        checkpoint = str(tmp_path / "c.jsonl")
        with pytest.raises(EventLogMismatch):
            execute_campaign(spec, checkpoint=checkpoint, event_log=log)
        # Neither file is wedged by the failed attempt.
        result = execute_campaign(
            spec, checkpoint=checkpoint, event_log=str(tmp_path / "ok.events.jsonl")
        )
        assert result.evaluated == spec.size
        CampaignCheckpoint(checkpoint).compact()

    def test_canonical_json_is_identical_with_and_without_event_log(self, spec, tmp_path):
        bare = execute_campaign(spec)
        logged = execute_campaign(spec, event_log=str(tmp_path / "c.events.jsonl"))
        assert bare.to_json() == logged.to_json()
        assert logged.event_log_path is not None
        assert "event log:" in logged.format()


class TestPayloadRoundTrip:
    def test_typed_events_survive_the_round_trip(self, spec, tmp_path):
        path = str(tmp_path / "types.events.jsonl")
        checkpoint = str(tmp_path / "types.jsonl")
        result = execute_campaign(spec, checkpoint=checkpoint, event_log=path)
        events = list(CampaignReplay(path).events())
        assert isinstance(events[0], CampaignStarted)
        assert isinstance(events[-1], CampaignFinished)
        assert events[0].fingerprint == spec.fingerprint()
        completed = [e for e in events if isinstance(e, PointCompleted)]
        assert sorted(e.record.key for e in completed) == sorted(
            r.key for r in result.records
        )
        # Record payloads round-trip canonically.
        by_key = {r.key: r for r in result.records}
        for event in completed:
            assert event.record.canonical() == by_key[event.record.key].canonical()
        started = [e for e in events if isinstance(e, PointStarted)]
        assert all(e.worker is not None and e.ts is not None for e in started)

    def test_unknown_kinds_are_skipped_not_fatal(self, spec, tmp_path):
        path = str(tmp_path / "fwd.events.jsonl")
        execute_campaign(spec, event_log=path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"kind": "from_the_future", "seq": 10**6, "ts": 0.0}) + "\n")
        stats = CampaignReplay(path).replay()
        assert stats.skipped == 1
        assert stats.finished
        assert event_from_payload({"kind": "from_the_future"}) is None


class TestCampaignReplay:
    def test_replay_is_deterministic(self, spec, tmp_path):
        """The satellite contract: two replays yield byte-identical output."""
        path = str(tmp_path / "det.events.jsonl")
        execute_campaign(spec, event_log=path, jobs=2)

        def replay_once():
            replay = CampaignReplay(path)
            stream = io.StringIO()
            reporter = ProgressReporter(
                stream=stream, min_interval=0.0, clock=replay.clock
            )
            stats = replay.replay(reporter)
            assert stats.finished
            return stream.getvalue()

        first, second = replay_once(), replay_once()
        assert first == second
        assert f"{spec.size}/{spec.size} points" in first

    def test_replay_reproduces_the_live_final_progress_line(self, spec, tmp_path):
        """The acceptance contract: the replayed reporter ends exactly where
        the live one did."""
        path = str(tmp_path / "live.events.jsonl")
        live = io.StringIO()
        execute_campaign(
            spec,
            event_log=path,
            observers=[ProgressReporter(stream=live, min_interval=0.0)],
        )
        replay = CampaignReplay(path)
        replayed = io.StringIO()
        replay.replay(
            ProgressReporter(stream=replayed, min_interval=0.0, clock=replay.clock)
        )
        assert (
            live.getvalue().splitlines()[-1] == replayed.getvalue().splitlines()[-1]
        )
        assert "campaign finished" in live.getvalue().splitlines()[-1]

    def test_replay_counts_sessions_and_completion(self, spec, tmp_path):
        log = str(tmp_path / "sessions.events.jsonl")
        checkpoint = str(tmp_path / "sessions.jsonl")
        execute_campaign(spec, checkpoint=checkpoint, event_log=log)
        execute_campaign(spec, checkpoint=checkpoint, event_log=log)
        replay = CampaignReplay(log)
        events = []
        stats = replay.replay(events.append)
        assert stats.campaigns == 2
        assert stats.finished
        assert stats.events == len(events)
        assert sum(1 for e in events if isinstance(e, PointResumed)) == spec.size

    def test_replay_refuses_a_wrong_fingerprint(self, spec, tmp_path):
        path = str(tmp_path / "fp.events.jsonl")
        execute_campaign(spec, event_log=path)
        assert CampaignReplay(path, fingerprint=spec.fingerprint()).replay().finished
        with pytest.raises(EventLogMismatch):
            CampaignReplay(path, fingerprint="not-this-campaign")

    def test_replay_refuses_a_checkpoint_file(self, spec, tmp_path):
        checkpoint = str(tmp_path / "cp.jsonl")
        execute_campaign(spec, checkpoint=checkpoint)
        with pytest.raises(EventLogMismatch, match="not an event log"):
            CampaignReplay(checkpoint)

    def test_replay_of_an_unfinished_log_reports_incomplete(self, spec, tmp_path):
        path = str(tmp_path / "crash.events.jsonl")
        execute_campaign(spec, event_log=path)
        lines = open(path, encoding="utf-8").read().splitlines(keepends=True)
        with open(path, "w", encoding="utf-8") as fh:  # drop campaign_finished
            fh.writelines(l for l in lines if '"campaign_finished"' not in l)
        stats = CampaignReplay(path).replay()
        assert not stats.finished
        assert "INCOMPLETE" in stats.format()


class TestFollowEventLog:
    def test_follow_shows_starts_in_flight_and_worker_rates(self, spec, tmp_path):
        path = str(tmp_path / "f.events.jsonl")
        execute_campaign(spec, event_log=path, jobs=2)
        stream = io.StringIO()
        assert follow_event_log(path, idle_timeout=2.0, stream=stream) == 0
        out = stream.getvalue()
        assert "in flight" in out
        assert f"campaign complete: {spec.size} points" in out
        assert "worker " in out and "point(s)" in out

    def test_follow_campaign_prefers_the_sidecar_event_log(self, spec, tmp_path):
        checkpoint = str(tmp_path / "c.jsonl")
        execute_campaign(
            spec, checkpoint=checkpoint, event_log=default_event_log_path(checkpoint)
        )
        stream = io.StringIO()
        assert follow_campaign(checkpoint, idle_timeout=2.0, stream=stream) == 0
        assert "following events" in stream.getvalue()

    def test_follow_campaign_ignores_a_stale_sidecar(self, spec, tmp_path):
        """A campaign re-run *without* --event-log must not be shadowed by
        an old sidecar: the newer checkpoint wins."""
        checkpoint = str(tmp_path / "c.jsonl")
        sidecar = default_event_log_path(checkpoint)
        execute_campaign(spec, checkpoint=checkpoint, event_log=sidecar)
        # The re-run resumes the checkpoint but logs no events; make the
        # sidecar unambiguously older than the refreshed checkpoint.
        old = os.path.getmtime(sidecar) - 100
        os.utime(sidecar, (old, old))
        execute_campaign(spec, checkpoint=checkpoint)
        stream = io.StringIO()
        assert follow_campaign(checkpoint, idle_timeout=2.0, stream=stream) == 0
        assert "following events" not in stream.getvalue()

    def test_follow_campaign_falls_back_to_legacy_checkpoints(self, spec, tmp_path):
        checkpoint = str(tmp_path / "legacy.jsonl")
        execute_campaign(spec, checkpoint=checkpoint)
        stream = io.StringIO()
        assert follow_campaign(checkpoint, idle_timeout=2.0, stream=stream) == 0
        out = stream.getvalue()
        assert "following events" not in out
        assert f"campaign complete: {spec.size} points" in out

    def test_follow_event_log_gives_up_on_a_crashed_campaign(self, spec, tmp_path):
        path = str(tmp_path / "crashed.events.jsonl")
        execute_campaign(spec, event_log=path)
        lines = open(path, encoding="utf-8").read().splitlines(keepends=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.writelines(
                l
                for l in lines
                if '"campaign_finished"' not in l and '"point_completed"' not in l
            )
        stream = io.StringIO()
        assert follow_event_log(path, idle_timeout=0.2, stream=stream) == 2
        assert "campaign incomplete" in stream.getvalue()


class TestWorkbenchIntegration:
    def test_with_event_log_builder_step(self, spec, tmp_path):
        path = str(tmp_path / "wb.events.jsonl")
        wb = Workbench()
        result = wb.sweep(spec).with_event_log(path).run()
        assert result.event_log_path == path
        assert CampaignReplay(path).replay().finished

    def test_run_accepts_a_prepared_observer(self, spec, tmp_path):
        path = str(tmp_path / "obs.events.jsonl")
        result = Workbench().run(spec, event_log=EventLogObserver(path))
        assert result.event_log_path == path
        assert os.path.getsize(path) > 0


class TestEventLogCLI:
    def test_event_log_flag_writes_the_sidecar(self, spec, tmp_path, capsys):
        checkpoint = str(tmp_path / "cli.jsonl")
        assert main(["--checkpoint", checkpoint, "--event-log"]) == 0
        sidecar = default_event_log_path(checkpoint)
        assert os.path.exists(sidecar)
        assert "event log:" in capsys.readouterr().out

    def test_bare_event_log_flag_requires_a_checkpoint(self):
        with pytest.raises(SystemExit):
            main(["--event-log"])

    def test_replay_subcommand(self, spec, tmp_path, capsys):
        log = str(tmp_path / "replay.events.jsonl")
        assert main(["--event-log", log]) == 0
        capsys.readouterr()
        assert main(["replay", log]) == 0
        out = capsys.readouterr().out
        assert "campaign finished" in out
        assert "finished" in out and "replayed" in out

    def test_replay_subcommand_flags_incomplete_logs(self, spec, tmp_path, capsys):
        log = str(tmp_path / "incomplete.events.jsonl")
        assert main(["--event-log", log]) == 0
        lines = open(log, encoding="utf-8").read().splitlines(keepends=True)
        with open(log, "w", encoding="utf-8") as fh:
            fh.writelines(l for l in lines if '"campaign_finished"' not in l)
        assert main(["replay", log, "--quiet"]) == 2
        assert "INCOMPLETE" in capsys.readouterr().out

    def test_follow_subcommand_reads_event_logs(self, spec, tmp_path, capsys):
        log = str(tmp_path / "fcli.events.jsonl")
        assert main(["--event-log", log, "--jobs", "2"]) == 0
        assert main(["follow", log, "--timeout", "2"]) == 0
        assert "campaign complete" in capsys.readouterr().out
