"""Event-stream tests: ordering guarantees, observer failure isolation and
serial-vs-parallel event-count parity."""

import io

import pytest

from repro.sweep.campaign import execute_campaign
from repro.sweep.events import (
    CampaignFinished,
    CampaignStarted,
    CheckpointFlushed,
    EventBus,
    EventLog,
    PointCompleted,
    PointResumed,
    PointStarted,
    ProgressReporter,
    RunEvent,
    RunObserver,
)
from repro.sweep.spec import smoke_spec
from repro.sweep.strategies import SuccessiveHalving


@pytest.fixture()
def spec():
    return smoke_spec(iterations=1)


def run_logged(spec, extra_observers=(), **kwargs):
    log = EventLog()
    result = execute_campaign(spec, observers=[log, *extra_observers], **kwargs)
    return result, log


class TestOrderingGuarantees:
    def test_campaign_events_bracket_the_stream(self, spec):
        _result, log = run_logged(spec)
        kinds = log.kinds()
        assert kinds[0] == "campaign_started"
        assert kinds[-1] == "campaign_finished"
        assert kinds.count("campaign_started") == 1
        assert kinds.count("campaign_finished") == 1

    def test_campaign_started_carries_the_plan(self, spec):
        _result, log = run_logged(spec, jobs=1)
        started = log.events[0]
        assert isinstance(started, CampaignStarted)
        assert started.total_points == spec.size
        assert started.fingerprint == spec.fingerprint()
        assert started.strategy == "grid"

    def test_point_started_precedes_its_completion(self, spec):
        for jobs in (1, 2):
            _result, log = run_logged(spec, jobs=jobs)
            started_at = {}
            for index, event in enumerate(log.events):
                if isinstance(event, PointStarted):
                    started_at.setdefault(event.key, index)
                elif isinstance(event, PointCompleted):
                    assert started_at[event.record.key] < index

    def test_checkpoint_flushed_follows_its_completion(self, spec, tmp_path):
        path = str(tmp_path / "events.jsonl")
        _result, log = run_logged(spec, checkpoint=path)
        last_completed_key = None
        flushed = []
        for event in log.events:
            if isinstance(event, PointCompleted):
                last_completed_key = event.record.key
            elif isinstance(event, CheckpointFlushed):
                # Queued dispatch: the flush lands right after its completion.
                assert event.key == last_completed_key
                assert event.path == path
                flushed.append(event)
        assert [e.flushed for e in flushed] == list(range(1, spec.size + 1))

    def test_finished_event_matches_the_result(self, spec):
        result, log = run_logged(spec)
        finished = log.events[-1]
        assert isinstance(finished, CampaignFinished)
        assert finished.evaluated == result.evaluated == spec.size
        assert finished.resumed == result.resumed == 0
        assert finished.total_points == spec.size


class TestEventCountParity:
    """A serial and a parallel run publish the same event counts."""

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_fresh_run_parity(self, spec, jobs):
        _serial_result, serial = run_logged(spec, jobs=1)
        _parallel_result, parallel = run_logged(spec, jobs=jobs)
        for kind in (
            "campaign_started",
            "point_started",
            "point_completed",
            "point_resumed",
            "campaign_finished",
        ):
            assert serial.count(kind) == parallel.count(kind), kind
        assert serial.count("point_started") == spec.size
        assert serial.count("point_completed") == spec.size
        # Completion *keys* agree too; only their order may differ.
        completed = lambda log: sorted(
            e.record.key for e in log.events if isinstance(e, PointCompleted)
        )
        assert completed(serial) == completed(parallel)

    def test_resumed_run_emits_point_resumed_instead(self, spec, tmp_path):
        path = str(tmp_path / "resume.jsonl")
        execute_campaign(spec, checkpoint=path)
        result, log = run_logged(spec, checkpoint=path, jobs=2)
        assert result.evaluated == 0
        assert log.count("point_completed") == 0
        assert log.count("point_started") == 0
        assert log.count("point_resumed") == spec.size
        resumed = [e for e in log.events if isinstance(e, PointResumed)]
        assert all(e.record.cycles is not None for e in resumed)

    def test_multi_rung_parity(self, spec):
        _s, serial = run_logged(spec, jobs=1, strategy=SuccessiveHalving(eta=2))
        _p, parallel = run_logged(spec, jobs=2, strategy=SuccessiveHalving(eta=2))
        assert serial.count("point_completed") == parallel.count("point_completed")
        assert serial.count("point_started") == parallel.count("point_started")


class FailingObserver(RunObserver):
    """Raises on every completion after ``allow`` successes."""

    def __init__(self, allow: int = 0) -> None:
        self.allow = allow
        self.seen = 0

    def on_point_completed(self, event):
        self.seen += 1
        if self.seen > self.allow:
            raise RuntimeError(f"observer exploded at event {self.seen}")


class TestObserverIsolation:
    def test_failing_observer_does_not_abort_the_campaign(self, spec):
        failing = FailingObserver(allow=2)
        log = EventLog()
        result = execute_campaign(spec, observers=[failing, log])
        assert result.size == spec.size
        assert len(result.observer_errors) == spec.size - 2
        assert all(err.observer is failing for err in result.observer_errors)
        # The observer registered after the failing one missed nothing.
        assert log.count("point_completed") == spec.size

    def test_failing_observer_does_not_change_the_canonical_result(self, spec):
        clean = execute_campaign(spec)
        dirty = execute_campaign(spec, observers=[FailingObserver()])
        assert dirty.to_json() == clean.to_json()
        assert dirty.observer_errors  # but the failures were recorded

    def test_plain_callable_observers_are_isolated_too(self, spec):
        calls = []

        def good(event):
            calls.append(event.kind)

        def bad(event):
            raise ValueError("callable observer down")

        result = execute_campaign(spec, observers=[bad, good])
        assert len(calls) == len(result.observer_errors)
        assert calls[0] == "campaign_started" and calls[-1] == "campaign_finished"

    def test_report_mentions_observer_errors(self, spec):
        result = execute_campaign(spec, observers=[FailingObserver()])
        assert "observer errors" in result.format()


class TestEventBusDispatch:
    def test_reentrant_publish_is_queued_not_interleaved(self):
        class Echo(RunObserver):
            """Publishes a follow-up event while the first is in flight."""

            def __init__(self, bus):
                self.bus = bus

            def on_point_started(self, event):
                self.bus.publish(PointCompleted(record=None))

        bus = EventBus()
        echo = Echo(bus)
        first, second = EventLog(), EventLog()
        bus.subscribe(first)
        bus.subscribe(echo)
        bus.subscribe(second)
        bus.publish(PointStarted(key="k", label="k"))
        # Every observer saw the same total order: the reentrant event was
        # delivered after the triggering event reached *all* observers.
        assert first.kinds() == ["point_started", "point_completed"]
        assert second.kinds() == ["point_started", "point_completed"]

    def test_critical_observer_failures_propagate(self):
        bus = EventBus()

        class Critical(RunObserver):
            def on_point_started(self, event):
                raise RuntimeError("critical down")

        bus.subscribe(Critical(), critical=True)
        with pytest.raises(RuntimeError, match="critical down"):
            bus.publish(PointStarted(key="k", label="k"))

    def test_unknown_events_fall_through_run_observer(self):
        class Quiet(RunObserver):
            pass

        Quiet().on_event(RunEvent())  # no handler, no error


class TestProgressReporter:
    def test_reports_counts_rate_and_eta(self, spec):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, min_interval=0.0)
        execute_campaign(spec, observers=[reporter])
        out = stream.getvalue()
        assert f"{spec.size}/{spec.size} points" in out
        assert "points/s" in out and "ETA" in out
        assert "campaign started" in out and "campaign finished" in out

    def test_counts_resumed_points(self, spec, tmp_path):
        path = str(tmp_path / "progress.jsonl")
        execute_campaign(spec, checkpoint=path)
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, min_interval=0.0)
        execute_campaign(spec, checkpoint=path, observers=[reporter])
        assert reporter.resumed == spec.size
        assert reporter.evaluated == 0
        assert f"{spec.size} resumed" in stream.getvalue()

    def test_throttling_suppresses_intermediate_lines(self, spec):
        stream = io.StringIO()
        # An hour between updates: only unthrottled lines may print.
        reporter = ProgressReporter(stream=stream, min_interval=3600.0)
        execute_campaign(spec, observers=[reporter])
        progress_lines = [
            line for line in stream.getvalue().splitlines() if "points/s" in line
        ]
        # First update and the forced final update.
        assert len(progress_lines) <= 2


class TestLegacyRunnerContract:
    """A PR-2-era custom runner that only *returns* records (publishing no
    events) must still checkpoint, aggregate and report correctly."""

    def make_runner(self):
        from repro.sweep.runners import Runner, SerialRunner, _evaluate_point

        class ReturnOnlyRunner(Runner):
            jobs = 1

            def run(self, points, on_result=None, keep_results=False):
                return [_evaluate_point(p, keep_result=keep_results) for p in points]

        return ReturnOnlyRunner()

    def test_returned_records_are_folded_into_the_event_stream(self, spec):
        log = EventLog()
        result = execute_campaign(spec, runner=self.make_runner(), observers=[log])
        assert result.size == spec.size
        assert result.evaluated == spec.size
        assert log.count("point_completed") == spec.size
        reference = execute_campaign(spec)
        assert result.to_json() == reference.to_json()

    def test_legacy_runner_still_checkpoints_and_resumes(self, spec, tmp_path):
        path = str(tmp_path / "legacy.jsonl")
        first = execute_campaign(spec, runner=self.make_runner(), checkpoint=path)
        assert first.evaluated == spec.size
        resumed = execute_campaign(spec, runner=self.make_runner(), checkpoint=path)
        assert resumed.evaluated == 0 and resumed.resumed == spec.size


class TestSessionWideProgressReset:
    def test_reporter_counters_reset_per_campaign(self, spec):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, min_interval=0.0)
        execute_campaign(spec, observers=[reporter])
        execute_campaign(spec, observers=[reporter])
        assert reporter.completed == spec.size  # not 2x: second campaign reset
        out = stream.getvalue()
        assert f"{2 * spec.size}/{spec.size}" not in out
        assert out.count("campaign finished") == 2
