"""Fault-tolerant campaign execution, end to end.

Serial retry loops, permanent-failure quarantine, pooled worker-crash
recovery, deadline re-issue of stragglers, resume semantics for failed
points, the chaos CLI, and the headline determinism guarantee: a
fault-injected campaign's *completed* points are byte-identical to a
fault-free run's — serial or pooled, live or replayed.
"""

import json

import pytest

from repro.faults import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    inject_faults,
)
from repro.sweep.campaign import execute_campaign
from repro.sweep.record import canonical_json
from repro.sweep.runners import ProcessPoolRunner, SerialRunner
from repro.sweep.spec import smoke_spec
from repro.sweep.__main__ import main


@pytest.fixture(scope="module")
def spec():
    return smoke_spec(iterations=1)


@pytest.fixture(scope="module")
def labels(spec):
    return sorted(p.display_label for p in spec.expand())


@pytest.fixture(scope="module")
def baseline(spec):
    """The fault-free canonical bytes every chaos run must reproduce."""
    return canonical_json(SerialRunner().run(spec.expand()))


def policy(**kwargs):
    kwargs.setdefault("max_attempts", 3)
    kwargs.setdefault("base_delay_s", 0.001)
    kwargs.setdefault("jitter", 0.0)
    return RetryPolicy(**kwargs)


class Collector:
    """Callable observer: buckets events by kind."""

    def __init__(self):
        self.events = {}

    def __call__(self, event):
        self.events.setdefault(event.kind, []).append(event)

    def kinds(self):
        return set(self.events)


class TestSerialRetry:
    def test_transient_failure_is_retried_to_success(self, spec, labels):
        plan = FaultPlan(
            faults=(FaultSpec(action="fail", label=labels[0], attempts_below=2),)
        )
        seen = Collector()
        with inject_faults(plan):
            result = execute_campaign(
                spec, retry_policy=policy(), observers=[seen]
            )
        assert result.failed == 0 and result.evaluated == spec.size
        retried = seen.events["point_retried"]
        assert [e.label for e in retried] == [labels[0]]
        assert retried[0].attempt == 1 and retried[0].reason == "error"
        assert "point_failed" not in seen.kinds()

    def test_poison_point_is_quarantined_not_raised(self, spec, labels):
        plan = FaultPlan(faults=(FaultSpec(action="fail", label=labels[0]),))
        seen = Collector()
        with inject_faults(plan):
            result = execute_campaign(spec, retry_policy=policy(), observers=[seen])
        assert result.failed == 1
        [failed] = seen.events["point_failed"]
        assert failed.record.failed and failed.record.label == labels[0]
        assert failed.record.meta["attempts"] == 3
        assert "InjectedFault" in failed.record.error
        # Every retryable attempt produced a retry event first.
        assert len(seen.events["point_retried"]) == 2

    def test_fatal_errors_skip_the_retry_budget(self, spec, labels):
        class Fatal(ValueError):
            pass

        plan = FaultPlan(faults=(FaultSpec(action="fail", label=labels[0]),))
        seen = Collector()

        # A ValueError-raising backend: fatal classification, one attempt.
        import repro.faults.inject as inject_mod

        real_maybe_fault = inject_mod.FaultyBackend._maybe_fault

        def fatal_fault(self):
            try:
                real_maybe_fault(self)
            except Exception:
                raise Fatal("deterministic bug") from None

        with inject_faults(plan):
            with pytest.MonkeyPatch.context() as mp:
                mp.setattr(inject_mod.FaultyBackend, "_maybe_fault", fatal_fault)
                result = execute_campaign(
                    spec, retry_policy=policy(), observers=[seen]
                )
        assert result.failed == 1
        assert "point_retried" not in seen.kinds()
        [failed] = seen.events["point_failed"]
        assert failed.record.meta["attempts"] == 1

    def test_simulated_crash_matches_pool_schedule(self, spec, labels):
        """A crash fault in the main process degrades to a retryable error."""
        plan = FaultPlan(
            faults=(FaultSpec(action="crash", label=labels[3], attempts_below=2),)
        )
        with inject_faults(plan):
            result = execute_campaign(spec, retry_policy=policy())
        assert result.failed == 0 and result.evaluated == spec.size


class TestPooledFaultTolerance:
    def test_real_worker_crash_is_recovered(self, spec, labels, baseline):
        plan = FaultPlan(
            faults=(FaultSpec(action="crash", label=labels[0], attempts_below=2),)
        )
        seen = Collector()
        with inject_faults(plan):
            result = execute_campaign(
                spec, jobs=2, retry_policy=policy(), observers=[seen]
            )
        assert result.failed == 0 and result.evaluated == spec.size
        assert "worker_lost" in seen.kinds()
        assert "pool_restarted" in seen.kinds()
        assert canonical_json(result.records) == baseline

    def test_hung_point_is_reissued_past_its_deadline(self, spec, labels, baseline):
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    action="hang", label=labels[0], attempts_below=2, seconds=30.0
                ),
            )
        )
        seen = Collector()
        with inject_faults(plan):
            result = execute_campaign(
                spec,
                jobs=2,
                retry_policy=policy(deadline_s=0.5),
                observers=[seen],
            )
        assert result.failed == 0 and result.evaluated == spec.size
        reasons = {e.reason for e in seen.events["point_retried"]}
        assert "deadline" in reasons
        assert canonical_json(result.records) == baseline

    def test_poison_crasher_is_quarantined_without_killing_the_campaign(
        self, spec, labels
    ):
        plan = FaultPlan(faults=(FaultSpec(action="crash", label=labels[0]),))
        seen = Collector()
        with inject_faults(plan):
            result = execute_campaign(
                spec, jobs=2, retry_policy=policy(), observers=[seen]
            )
        assert result.failed == 1 and result.evaluated == spec.size - 1
        [failed] = seen.events["point_failed"]
        assert failed.record.label == labels[0]
        assert "crash" in failed.record.error.lower()


class TestResumeSemantics:
    def _failed_checkpoint(self, spec, labels, tmp_path):
        path = str(tmp_path / "failed.jsonl")
        plan = FaultPlan(faults=(FaultSpec(action="fail", label=labels[0]),))
        with inject_faults(plan):
            result = execute_campaign(spec, checkpoint=path, retry_policy=policy())
        assert result.failed == 1
        return path

    def test_resume_skips_permanently_failed_points(self, spec, labels, tmp_path):
        path = self._failed_checkpoint(spec, labels, tmp_path)
        resumed = execute_campaign(spec, checkpoint=path, retry_policy=policy())
        assert resumed.evaluated == 0
        assert resumed.resumed == spec.size  # the failure record counts
        assert resumed.failed == 1

    def test_retry_failed_re_attempts_them(self, spec, labels, tmp_path):
        path = self._failed_checkpoint(spec, labels, tmp_path)
        # No fault plan now: the re-attempt succeeds and supersedes.
        retried = execute_campaign(
            spec, checkpoint=path, retry_policy=policy(), retry_failed=True
        )
        assert retried.evaluated == 1 and retried.failed == 0
        # The checkpoint's last record per key now shows success everywhere.
        clean = execute_campaign(spec, checkpoint=path)
        assert clean.failed == 0 and clean.resumed == spec.size

    def test_failure_records_survive_the_checkpoint_roundtrip(
        self, spec, labels, tmp_path
    ):
        path = self._failed_checkpoint(spec, labels, tmp_path)
        from repro.sweep.checkpoint import CampaignCheckpoint

        records = CampaignCheckpoint(path).load()
        failed = [r for r in records.values() if r.failed]
        assert len(failed) == 1
        assert failed[0].label == labels[0]
        assert failed[0].meta["status"] == "failed"
        assert failed[0].cycles is None


class TestChaosParity:
    """The acceptance scenario: crash + hang + transient fail + poison, pooled."""

    def _plan(self, labels):
        return FaultPlan(
            faults=(
                FaultSpec(action="fail", label=labels[1], attempts_below=2),
                FaultSpec(action="crash", label=labels[2], attempts_below=2),
                FaultSpec(action="hang", label=labels[3], attempts_below=2, seconds=30.0),
                FaultSpec(action="fail", label=labels[0]),  # the poison
            )
        )

    def test_serial_and_pooled_chaos_match_the_fault_free_bytes(
        self, spec, labels, baseline, tmp_path
    ):
        chaos_policy = policy(deadline_s=2.0)
        plan = self._plan(labels)
        with inject_faults(plan):
            serial = execute_campaign(spec, retry_policy=chaos_policy)
        with inject_faults(plan):
            pooled = execute_campaign(spec, jobs=2, retry_policy=chaos_policy)
        assert serial.failed == pooled.failed == 1
        # canonical_json drops failed records: completed points must be
        # byte-identical to each other and to the fault-free baseline
        # filtered down to the same keys.
        assert canonical_json(serial.records) == canonical_json(pooled.records)
        clean = json.loads(baseline)
        chaos = json.loads(canonical_json(pooled.records))
        chaos_keys = {row["key"] for row in chaos}
        assert len(chaos) == spec.size - 1
        assert [row for row in clean if row["key"] in chaos_keys] == chaos

    def test_live_and_replayed_streams_agree(self, spec, labels, tmp_path):
        from repro.sweep.eventlog import CampaignReplay

        log = str(tmp_path / "chaos.events.jsonl")
        seen = Collector()
        with inject_faults(self._plan(labels)):
            result = execute_campaign(
                spec,
                jobs=2,
                retry_policy=policy(deadline_s=2.0),
                event_log=log,
                observers=[seen],
            )
        assert result.failed == 1
        required = {"point_retried", "point_failed", "worker_lost", "pool_restarted"}
        assert required <= seen.kinds()
        stats = CampaignReplay(log).replay()
        assert stats.finished and stats.failed == 1
        # The persisted stream carries the same incident kinds.
        kinds = {json.loads(line).get("kind") for line in open(log)}
        assert required <= kinds


class TestChaosCli:
    def test_chaos_subcommand_runs_and_reports(self, labels, tmp_path, capsys):
        ckpt = str(tmp_path / "chaos.jsonl")
        code = main(
            [
                "chaos",
                "--checkpoint",
                ckpt,
                "--event-log",
                "--fail",
                f"{labels[1]}@1",
                "--fail",
                labels[0],
                "--retry-delay",
                "0.001",
                "--expect-failed",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 FAILED" in out

    def test_expect_failed_mismatch_exits_nonzero(self, labels, capsys):
        assert main(["chaos", "--retry-delay", "0.001", "--expect-failed", "3"]) == 1
        assert "expected 3" in capsys.readouterr().err

    def test_clean_chaos_run_exits_zero(self, capsys):
        assert main(["chaos", "--retry-delay", "0.001"]) == 0

    def test_main_driver_retry_flags_and_exit_code(self, labels, tmp_path, capsys):
        ckpt = str(tmp_path / "drill.jsonl")
        plan = FaultPlan(faults=(FaultSpec(action="fail", label=labels[0]),))
        with inject_faults(plan):
            code = main(
                [
                    "--checkpoint",
                    ckpt,
                    "--max-attempts",
                    "2",
                    "--retry-delay",
                    "0.001",
                ]
            )
        assert code == 1  # finished with failed points
        assert "1 FAILED" in capsys.readouterr().out
        # Resume skips the failed point; --retry-failed re-attempts it.
        assert main(["--checkpoint", ckpt, "--max-attempts", "2"]) == 1
        assert main(["--checkpoint", ckpt, "--max-attempts", "2", "--retry-failed"]) == 0
