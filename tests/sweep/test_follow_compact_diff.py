"""Checkpoint compaction, campaign diffing and the --follow tailer."""

import io
import json
import os
import threading
import time

import pytest

from repro.sweep.__main__ import main
from repro.sweep.campaign import diff_canonical_rows, execute_campaign
from repro.sweep.checkpoint import CampaignCheckpoint
from repro.sweep.follow import follow_checkpoint
from repro.sweep.spec import smoke_spec


@pytest.fixture()
def spec():
    return smoke_spec(iterations=1)


def checkpoint_lines(path):
    with open(path, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


class TestCompaction:
    def test_compaction_drops_superseded_records(self, spec, tmp_path):
        path = str(tmp_path / "c.jsonl")
        result = execute_campaign(spec, checkpoint=path)
        # Simulate a history of retries: re-append two stale records and a
        # corrupt fragment.
        store = CampaignCheckpoint(path)
        with open(path, "a", encoding="utf-8") as fh:
            for record in result.records[:2]:
                payload = record.to_json_dict()
                payload["kind"] = "record"
                fh.write(json.dumps(payload, sort_keys=True) + "\n")
            fh.write('{"kind": "record", "key": "trunc')
        stats = store.compact()
        assert stats.kept == spec.size
        assert stats.dropped_records == 2
        assert stats.dropped_lines == 1
        kinds = [p["kind"] for p in checkpoint_lines(path)]
        assert kinds.count("header") == 1
        assert kinds.count("record") == spec.size

    def test_compaction_keeps_the_latest_record_per_key(self, spec, tmp_path):
        path = str(tmp_path / "latest.jsonl")
        result = execute_campaign(spec, checkpoint=path)
        stale = result.records[0].to_json_dict()
        stale["kind"] = "record"
        stale["cycles"] = 999_999_999  # a newer (here: doctored) re-evaluation
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(stale, sort_keys=True) + "\n")
        CampaignCheckpoint(path).compact()
        records = CampaignCheckpoint(path).load()
        assert records[result.records[0].key].cycles == 999_999_999

    def test_fingerprint_survives_and_resume_still_works(self, spec, tmp_path):
        path = str(tmp_path / "resume.jsonl")
        execute_campaign(spec, checkpoint=path)
        header_before = CampaignCheckpoint(path).read_header()
        CampaignCheckpoint(path).compact()
        header_after = CampaignCheckpoint(path).read_header()
        assert header_after == header_before
        assert header_after["fingerprint"] == spec.fingerprint()
        resumed = execute_campaign(spec, checkpoint=path)
        assert resumed.evaluated == 0 and resumed.resumed == spec.size

    def test_compaction_is_idempotent(self, spec, tmp_path):
        path = str(tmp_path / "twice.jsonl")
        execute_campaign(spec, checkpoint=path)
        CampaignCheckpoint(path).compact()
        first = open(path, "rb").read()
        stats = CampaignCheckpoint(path).compact()
        assert stats.dropped_records == 0
        assert open(path, "rb").read() == first

    def test_compaction_refuses_an_open_checkpoint(self, spec, tmp_path):
        store = CampaignCheckpoint(str(tmp_path / "open.jsonl"))
        store.open_for_append(spec)
        with pytest.raises(RuntimeError):
            store.compact()
        store.close()

    def test_compacting_a_missing_file_is_a_noop(self, tmp_path):
        stats = CampaignCheckpoint(str(tmp_path / "missing.jsonl")).compact()
        assert stats.kept == 0

    def test_compact_cli(self, spec, tmp_path, capsys):
        path = str(tmp_path / "cli.jsonl")
        execute_campaign(spec, checkpoint=path)
        assert main(["compact", path]) == 0
        assert "kept 18 record(s)" in capsys.readouterr().out


class TestCampaignDiff:
    def test_identical_campaigns_diff_clean(self, spec):
        a = execute_campaign(spec, jobs=1)
        b = execute_campaign(spec, jobs=2)
        diff = a.diff(b)
        assert diff.identical
        assert diff.unchanged == spec.size
        assert "identical" in diff.format()

    def test_added_and_removed_points(self, spec):
        full = execute_campaign(spec)
        smaller = execute_campaign(smoke_spec(iterations=1, name="small"))
        # Different spec name => different keys: everything differs.
        diff = full.diff(smaller)
        assert len(diff.added) == spec.size
        assert len(diff.removed) == smaller.size
        assert not diff.identical

    def test_changed_points_report_their_fields(self, spec):
        result = execute_campaign(spec)
        rows = result.canonical_rows()
        doctored = [dict(row) for row in rows]
        doctored[0]["cycles"] = doctored[0]["cycles"] + 1
        diff = result.diff(doctored)
        assert len(diff.changed) == 1
        new_row, old_row = diff.changed[0]
        assert diff.changed_fields(new_row, old_row) == ["cycles"]
        assert "cycles" in diff.format()

    def test_diff_accepts_row_lists(self, spec):
        result = execute_campaign(spec)
        assert result.diff(result.canonical_rows()).identical

    def test_diff_cli_identical_and_different(self, spec, tmp_path, capsys):
        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.jsonl")
        execute_campaign(spec, checkpoint=a)
        execute_campaign(spec, checkpoint=b)
        assert main(["diff", a, b]) == 0
        other = str(tmp_path / "other.jsonl")
        execute_campaign(smoke_spec(iterations=2), checkpoint=other)
        assert main(["diff", a, other]) == 1
        out = capsys.readouterr().out
        assert "identical" in out and "campaign diff" in out


class TestFollow:
    def test_follow_a_completed_checkpoint_exits_cleanly(self, spec, tmp_path):
        path = str(tmp_path / "done.jsonl")
        execute_campaign(spec, checkpoint=path)
        stream = io.StringIO()
        assert follow_checkpoint(path, idle_timeout=2.0, stream=stream) == 0
        out = stream.getvalue()
        assert "points/s" in out and "ETA" in out
        assert f"campaign complete: {spec.size} points" in out

    def test_follow_tails_a_live_checkpoint(self, spec, tmp_path):
        """The acceptance scenario: attach first, watch records stream in."""
        path = str(tmp_path / "live.jsonl")

        def produce():
            time.sleep(0.3)
            execute_campaign(spec, checkpoint=path)

        producer = threading.Thread(target=produce)
        producer.start()
        try:
            stream = io.StringIO()
            code = follow_checkpoint(
                path, poll_seconds=0.05, idle_timeout=30.0, stream=stream
            )
        finally:
            producer.join()
        assert code == 0
        out = stream.getvalue()
        assert f"{spec.size}/{spec.size} points" in out
        assert "points/s" in out and "ETA" in out

    def test_follow_gives_up_on_an_idle_incomplete_checkpoint(self, spec, tmp_path):
        path = str(tmp_path / "stuck.jsonl")

        class Stall(RuntimeError):
            pass

        from repro.sweep.runners import SerialRunner

        class StallingRunner(SerialRunner):
            def run(self, points, on_result=None, keep_results=False):
                done = super().run(points[:3], on_result=on_result, keep_results=keep_results)
                raise Stall("killed mid-campaign")

        with pytest.raises(Stall):
            execute_campaign(spec, checkpoint=path, runner=StallingRunner())
        stream = io.StringIO()
        code = follow_checkpoint(
            path, poll_seconds=0.02, idle_timeout=0.2, stream=stream
        )
        assert code == 2
        assert "giving up" in stream.getvalue()

    def test_follow_cli_flag_and_subcommand(self, spec, tmp_path, capsys):
        path = str(tmp_path / "cli.jsonl")
        execute_campaign(spec, checkpoint=path)
        assert main(["--follow", path, "--follow-timeout", "2"]) == 0
        assert main(["follow", path, "--timeout", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("campaign complete") == 2


class TestAdaptiveStrategyCompletion:
    """Follow must trust the finished marker, not record counts, for
    adaptive strategies (halving writes more records than total_points,
    random fewer)."""

    def test_follow_completes_a_random_strategy_checkpoint(self, spec, tmp_path):
        from repro.sweep.strategies import RandomSearch

        path = str(tmp_path / "random.jsonl")
        result = execute_campaign(
            spec, checkpoint=path, strategy=RandomSearch(samples=5)
        )
        assert result.size == 5  # fewer records than the 18-point expansion
        stream = io.StringIO()
        assert follow_checkpoint(path, idle_timeout=2.0, stream=stream) == 0
        assert "campaign complete" in stream.getvalue()

    def test_follow_completes_a_halving_checkpoint(self, spec, tmp_path):
        from repro.sweep.strategies import SuccessiveHalving

        path = str(tmp_path / "halving.jsonl")
        result = execute_campaign(
            spec, checkpoint=path, strategy=SuccessiveHalving(eta=2)
        )
        assert result.size > spec.size  # both rungs are checkpointed
        stream = io.StringIO()
        assert follow_checkpoint(path, idle_timeout=2.0, stream=stream) == 0

    def test_follow_does_not_trust_counts_for_adaptive_strategies(self, spec, tmp_path):
        """Rung 0 of halving reaches total_points while rung 1 still runs;
        without the finished marker the follower must keep waiting."""
        from repro.sweep.strategies import SuccessiveHalving

        path = str(tmp_path / "unfinished.jsonl")
        execute_campaign(spec, checkpoint=path, strategy=SuccessiveHalving(eta=2))
        # Strip the finished marker: the file now looks like a halving
        # campaign killed between rung 1 completions.
        with open(path, encoding="utf-8") as fh:
            lines = [l for l in fh if '"kind": "finished"' not in l]
        with open(path, "w", encoding="utf-8") as fh:
            fh.writelines(lines)
        stream = io.StringIO()
        assert follow_checkpoint(path, idle_timeout=0.2, stream=stream) == 2
        assert "giving up" in stream.getvalue()

    def test_compaction_preserves_the_finished_marker(self, spec, tmp_path):
        from repro.sweep.strategies import RandomSearch

        path = str(tmp_path / "compacted.jsonl")
        execute_campaign(spec, checkpoint=path, strategy=RandomSearch(samples=5))
        CampaignCheckpoint(path).compact()
        stream = io.StringIO()
        assert follow_checkpoint(path, idle_timeout=2.0, stream=stream) == 0

    def test_crashed_campaign_writes_no_finished_marker(self, spec, tmp_path):
        from repro.sweep.runners import SerialRunner

        class Crash(RuntimeError):
            pass

        class CrashingRunner(SerialRunner):
            def run(self, points, on_result=None, keep_results=False):
                super().run(points[:2], on_result=on_result, keep_results=keep_results)
                raise Crash()

        path = str(tmp_path / "crashed.jsonl")
        with pytest.raises(Crash):
            execute_campaign(spec, checkpoint=path, runner=CrashingRunner())
        kinds = [p["kind"] for p in checkpoint_lines(path)]
        assert "finished" not in kinds


class TestFollowerResync:
    """The stale-offset bugfixes: truncation/rewrite detection and torn-tail
    salvage instead of silent stalls."""

    def test_tailer_resyncs_after_truncation(self, spec, tmp_path):
        from repro.sweep.follow import _CheckpointTailer

        path = str(tmp_path / "trunc.jsonl")
        execute_campaign(spec, checkpoint=path)
        tailer = _CheckpointTailer(path)
        tailer.poll()
        assert tailer.count == spec.size
        # Truncate to the header plus three records: the offset now points
        # beyond EOF — the pre-fix tailer would stall here forever.
        with open(path, encoding="utf-8") as fh:
            lines = fh.readlines()
        with open(path, "w", encoding="utf-8") as fh:
            fh.writelines(lines[:4])
        tailer.poll()
        assert tailer.resyncs == 1
        assert tailer.count == 3
        assert not tailer.finished

    def test_tailer_resyncs_after_compaction(self, spec, tmp_path):
        from repro.sweep.follow import _CheckpointTailer

        path = str(tmp_path / "resync.jsonl")
        result = execute_campaign(spec, checkpoint=path)
        # Superseded duplicates make the file strictly longer than its
        # compacted form, the shape a long-lived campaign accumulates.
        with open(path, "a", encoding="utf-8") as fh:
            for record in result.records[:4]:
                payload = record.to_json_dict()
                payload["kind"] = "record"
                fh.write(json.dumps(payload, sort_keys=True) + "\n")
        tailer = _CheckpointTailer(path)
        tailer.poll()
        assert tailer.count == spec.size
        CampaignCheckpoint(path).compact()
        tailer.poll()
        assert tailer.resyncs == 1
        assert tailer.count == spec.size  # count accuracy survives the rewrite
        assert tailer.complete

    def test_tailer_resyncs_when_a_rewrite_regrows_past_the_old_offset(
        self, spec, tmp_path
    ):
        """Compact reproduces the header byte-identically and the resumed
        campaign can regrow the file beyond the stale offset before the next
        poll — only the inode betrays the atomic rename."""
        from repro.sweep.follow import _CheckpointTailer

        path = str(tmp_path / "regrow.jsonl")
        result = execute_campaign(spec, checkpoint=path)
        with open(path, encoding="utf-8") as fh:
            lines = fh.readlines()
        records = [l for l in lines if '"kind": "record"' in l]
        # Stage mid-campaign: header + 10 records + heavy duplicate churn.
        with open(path, "w", encoding="utf-8") as fh:
            fh.writelines([lines[0]] + records[:10] + records[:10] * 3)
        tailer = _CheckpointTailer(path)
        tailer.poll()
        assert tailer.count == 10
        stale_offset = tailer.offset
        CampaignCheckpoint(path).compact()
        # The campaign resumes and appends well past the follower's offset.
        with open(path, "a", encoding="utf-8") as fh:
            fh.writelines(records[10:] + records * 3)
        assert os.path.getsize(path) > stale_offset  # size check is blind here
        tailer.poll()
        assert tailer.resyncs == 1
        assert tailer.count == spec.size

    def test_follow_survives_a_mid_tail_compact(self, spec, tmp_path):
        """The acceptance scenario: compact runs between polls; the follower
        prints a resync notice and still reaches an accurate N/N."""
        path = str(tmp_path / "midtail.jsonl")
        result = execute_campaign(spec, checkpoint=path)
        with open(path, encoding="utf-8") as fh:
            lines = fh.readlines()
        live_lines = lines[: 1 + spec.size - 3]  # header + all but 3 records
        tail_lines = lines[1 + spec.size - 3 :]
        # Stage a still-running campaign: superseded duplicates, no finish.
        with open(path, "w", encoding="utf-8") as fh:
            fh.writelines(live_lines)
            for record in result.records[:4]:
                payload = record.to_json_dict()
                payload["kind"] = "record"
                fh.write(json.dumps(payload, sort_keys=True) + "\n")

        steps = {"n": 0}

        def fake_sleep(_seconds):
            steps["n"] += 1
            if steps["n"] == 1:
                CampaignCheckpoint(path).compact()
            elif steps["n"] == 2:
                with open(path, "a", encoding="utf-8") as fh:
                    fh.writelines(tail_lines)

        stream = io.StringIO()
        code = follow_checkpoint(
            path, poll_seconds=0.01, idle_timeout=5.0, stream=stream, sleep=fake_sleep
        )
        out = stream.getvalue()
        assert code == 0
        assert "checkpoint rewritten, re-syncing" in out
        assert f"campaign complete: {spec.size} points" in out

    def test_torn_record_line_reports_incomplete_not_a_hang(self, spec, tmp_path):
        """A writer killed mid-record leaves an unparseable tail: follow must
        report the campaign incomplete with exit code 2, not sit at N-1/N."""
        path = str(tmp_path / "torn.jsonl")
        execute_campaign(spec, checkpoint=path)
        with open(path, encoding="utf-8") as fh:
            lines = [l for l in fh if '"kind": "finished"' not in l]
        with open(path, "w", encoding="utf-8") as fh:
            fh.writelines(lines[:-1])
            fh.write(lines[-1].rstrip("\n")[: len(lines[-1]) // 2])  # torn mid-JSON
        stream = io.StringIO()
        code = follow_checkpoint(path, poll_seconds=0.02, idle_timeout=0.2, stream=stream)
        out = stream.getvalue()
        assert code == 2
        assert f"{spec.size - 1}/{spec.size}" in out
        assert "campaign incomplete" in out and "giving up" in out

    def test_torn_finished_marker_is_salvaged(self, spec, tmp_path):
        """A finished marker missing only its newline still completes the
        campaign: the tailer re-reads the tail before giving up."""
        from repro.sweep.strategies import RandomSearch

        # Random strategy: counts prove nothing, only the marker can
        # complete the campaign — so a salvaged tail is load-bearing.
        path = str(tmp_path / "salvage.jsonl")
        execute_campaign(spec, checkpoint=path, strategy=RandomSearch(samples=5))
        content = open(path, encoding="utf-8").read()
        assert content.endswith("\n")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content[:-1])  # the writer died before the last newline
        stream = io.StringIO()
        code = follow_checkpoint(path, poll_seconds=0.02, idle_timeout=0.2, stream=stream)
        out = stream.getvalue()
        assert code == 0
        assert "salvaged torn trailing line" in out
        assert "campaign complete: 5 points" in out


class TestConcurrentCompaction:
    def test_compact_refuses_a_checkpoint_another_store_holds_open(self, spec, tmp_path):
        """The cross-process guard: compacting under a live appender would
        divert its appends to an unlinked inode."""
        pytest.importorskip("fcntl")
        path = str(tmp_path / "live.jsonl")
        execute_campaign(spec, checkpoint=path)
        appender = CampaignCheckpoint(path)
        appender.open_for_append(spec)
        try:
            with pytest.raises(RuntimeError, match="running campaign"):
                CampaignCheckpoint(path).compact()
        finally:
            appender.close()
        # Released: compaction now succeeds.
        assert CampaignCheckpoint(path).compact().kept == spec.size

    def test_two_campaigns_cannot_append_to_one_checkpoint(self, spec, tmp_path):
        pytest.importorskip("fcntl")
        path = str(tmp_path / "contended.jsonl")
        first = CampaignCheckpoint(path)
        first.open_for_append(spec)
        try:
            second = CampaignCheckpoint(path)
            with pytest.raises(RuntimeError, match="already open"):
                second.open_for_append(spec)
        finally:
            first.close()
