"""Tests for the PointRecord shape: projection, serialisation, derived metrics."""

import json

import pytest

from repro.pipeline import StencilProblem, compile, evaluate
from repro.sweep.record import CANONICAL_FIELDS, PointRecord, canonical_json


@pytest.fixture(scope="module")
def analytic_record():
    design = compile(StencilProblem.paper_example(7, 9))
    result = evaluate(design, backend="analytic", iterations=3)
    return PointRecord.from_result(
        "k1", "p7x9", result, meta={"wall_seconds": 0.5, "worker": 42}
    )


class TestProjection:
    def test_metrics_copied_from_result(self, analytic_record):
        r = analytic_record
        assert r.cycles > 0
        assert r.dram_bytes > 0
        assert r.total_bits > 0
        assert r.fmax_mhz > 0
        assert r.backend == "analytic"
        assert r.result is None  # slim by default

    def test_derived_metrics(self, analytic_record):
        r = analytic_record
        assert r.dram_traffic_kib == pytest.approx(r.dram_bytes / 1024)
        assert r.execution_time_us() == pytest.approx(r.cycles / r.fmax_mhz)
        assert r.mops() > 0

    def test_derived_metric_guards(self, analytic_record):
        with pytest.raises(ValueError, match="must be positive"):
            analytic_record.execution_time_us(0)
        timeless = PointRecord(key="k", label="l", backend="cost", system="smache")
        with pytest.raises(ValueError, match="no cycle count"):
            timeless.execution_time_us()


class TestSerialisation:
    def test_json_round_trip_preserves_canonical_fields(self, analytic_record):
        line = json.dumps(analytic_record.to_json_dict())
        restored = PointRecord.from_json_dict(json.loads(line))
        assert restored.canonical() == analytic_record.canonical()
        assert restored.meta == analytic_record.meta

    def test_canonical_excludes_meta_and_result(self, analytic_record):
        canonical = analytic_record.canonical()
        assert set(canonical) == set(CANONICAL_FIELDS)
        assert "meta" not in canonical

    def test_canonical_json_sorts_by_rung_then_key(self):
        records = [
            PointRecord(key="b", label="b", backend="x", system="s", rung=0),
            PointRecord(key="a", label="a", backend="x", system="s", rung=1),
            PointRecord(key="a", label="a", backend="x", system="s", rung=0),
        ]
        rows = json.loads(canonical_json(records))
        assert [(r["rung"], r["key"]) for r in rows] == [(0, "a"), (0, "b"), (1, "a")]
