"""Tests for the executor layer: serial/parallel runners and evaluate_batch."""

import pytest

from repro.pipeline import EvaluationRequest, StencilProblem, evaluate, evaluate_batch
from repro.sweep.record import canonical_json
from repro.sweep.runners import ProcessPoolRunner, SerialRunner, make_runner
from repro.sweep.spec import SweepSpec, smoke_spec


@pytest.fixture(scope="module")
def points():
    return smoke_spec(iterations=2).expand()


class TestSerialRunner:
    def test_records_in_input_order(self, points):
        records = SerialRunner().run(points)
        assert [r.key for r in records] == [p.key() for p in points]

    def test_callback_sees_every_record(self, points):
        seen = []
        SerialRunner().run(points, on_result=seen.append)
        assert len(seen) == len(points)

    def test_keep_results_attaches_full_results(self, points):
        record = SerialRunner().run(points[:1], keep_results=True)[0]
        assert record.result is not None
        assert record.result.cycles == record.cycles
        # Without the flag, records stay slim.
        assert SerialRunner().run(points[:1])[0].result is None

    def test_meta_carries_timing_and_cache_counters(self, points):
        record = SerialRunner().run(points[:1])[0]
        assert record.meta["wall_seconds"] >= 0
        assert "cache_misses" in record.meta and "worker" in record.meta


class TestProcessPoolRunner:
    def test_parallel_matches_serial_byte_for_byte(self, points):
        """The determinism contract of the whole engine."""
        serial = SerialRunner().run(points)
        parallel = ProcessPoolRunner(jobs=2).run(points)
        assert canonical_json(parallel) == canonical_json(serial)

    def test_records_in_input_order(self, points):
        records = ProcessPoolRunner(jobs=2, chunksize=2).run(points)
        assert [r.key for r in records] == [p.key() for p in points]

    def test_callback_sees_every_record(self, points):
        seen = []
        ProcessPoolRunner(jobs=2).run(points, on_result=seen.append)
        assert sorted(r.key for r in seen) == sorted(p.key() for p in points)

    def test_keep_results_survives_the_process_boundary(self, points):
        record = ProcessPoolRunner(jobs=2).run(points[:2], keep_results=True)[0]
        assert record.result is not None
        assert record.result.design.total_memory_bits == record.total_bits
        # Live simulation objects are stripped before pickling.
        assert record.result.artifacts == {}

    def test_single_point_fallback_honours_the_parallel_contract(self, points):
        records = ProcessPoolRunner(jobs=4).run(points[:1], keep_results=True)
        assert len(records) == 1
        # Artifacts are stripped exactly as a real worker would strip them,
        # so behaviour does not depend on the batch length.
        assert records[0].result is not None
        assert records[0].result.artifacts == {}

    def test_run_invocations_are_tagged(self, points):
        runner = ProcessPoolRunner(jobs=2)
        first = runner.run(points[:4])
        second = runner.run(points[:4])
        assert {r.meta["run"] for r in first} == {1}
        assert {r.meta["run"] for r in second} == {2}

    def test_empty_input(self):
        assert ProcessPoolRunner(jobs=2).run([]) == []

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ProcessPoolRunner(jobs=0)
        with pytest.raises(ValueError):
            ProcessPoolRunner(jobs=2, chunksize=0)

    def test_make_runner_picks_by_jobs(self):
        assert isinstance(make_runner(1), SerialRunner)
        runner = make_runner(3)
        assert isinstance(runner, ProcessPoolRunner) and runner.jobs == 3


class TestParallelEvaluateBatch:
    def test_results_match_serial_evaluation(self):
        problems = [
            StencilProblem.paper_example(7, 9),
            StencilProblem.paper_example(9, 7),
            StencilProblem.paper_example(11, 11),
        ]
        request = EvaluationRequest(iterations=3)
        serial = [evaluate(p, backend="analytic", request=request) for p in problems]
        parallel = evaluate_batch(
            problems, backend="analytic", request=request, jobs=2
        )
        assert [r.cycles for r in parallel] == [r.cycles for r in serial]
        assert [r.dram_bytes for r in parallel] == [r.dram_bytes for r in serial]
        assert [r.design.problem.name for r in parallel] == [p.name for p in problems]

    def test_simulate_backend_round_trips(self):
        problems = [StencilProblem.paper_example(7, 9), StencilProblem.paper_example(9, 7)]
        results = evaluate_batch(problems, backend="simulate", jobs=2, iterations=2)
        for r in results:
            assert r.cycles > 0
            assert r.output is not None  # outputs survive the process boundary

    def test_non_default_cache_stays_serial(self):
        """A bypassed or custom cache cannot be shared with workers."""
        from repro.pipeline.cache import PlanCache

        problems = [StencilProblem.paper_example(7, 9), StencilProblem.paper_example(9, 7)]
        bypassed = evaluate_batch(problems, jobs=2, cache=None, iterations=2)
        custom = PlanCache()
        cached = evaluate_batch(problems, jobs=2, cache=custom, iterations=2)
        assert [r.cycles for r in bypassed] == [r.cycles for r in cached]
        assert custom.cache_info().misses == 2  # really went through the custom cache


class TestCostAwareChunking:
    """Chunks are cut by predicted compile cost, not point count."""

    def giant_and_dwarfs(self):
        giant = StencilProblem.paper_example(96, 96, name="giant")
        dwarfs = [
            StencilProblem.paper_example(7, 9, name=f"dwarf-{i}") for i in range(12)
        ]
        return SweepSpec.from_problems([giant, *dwarfs], name="skew").expand()

    def test_weight_is_the_grid_cell_count(self):
        from repro.sweep.runners import point_cost_weight

        points = self.giant_and_dwarfs()
        assert point_cost_weight(points[0]) == 96 * 96
        assert point_cost_weight(points[1]) == 7 * 9

    def test_chunks_are_contiguous_and_cover_the_input(self):
        from repro.sweep.runners import cost_balanced_chunks

        points = self.giant_and_dwarfs()
        chunks = cost_balanced_chunks(points, n_chunks=4)
        assert 1 <= len(chunks) <= 4
        flattened = [p for chunk in chunks for p in chunk]
        assert [p.key() for p in flattened] == [p.key() for p in points]

    def test_giant_point_does_not_straggle_a_worker(self):
        from repro.sweep.runners import cost_balanced_chunks, point_cost_weight

        points = self.giant_and_dwarfs()
        chunks = cost_balanced_chunks(points, n_chunks=4)
        # The giant problem fills its chunk alone; the dwarfs pack together.
        assert len(chunks[0]) == 1
        assert chunks[0][0].problem.name == "giant"
        # No chunk is heavier than the giant plus one dwarf's worth of slack.
        heaviest = max(sum(point_cost_weight(p) for p in c) for c in chunks)
        assert heaviest <= 96 * 96 + 7 * 9

    def test_uniform_points_split_evenly(self):
        from repro.sweep.runners import cost_balanced_chunks

        points = smoke_spec(iterations=1).expand()  # 18 uniform-ish points
        chunks = cost_balanced_chunks(points, n_chunks=6)
        assert len(chunks) == 6
        assert all(chunk for chunk in chunks)

    def test_points_sharing_a_problem_stay_together(self):
        # backends expand innermost: each problem contributes two adjacent
        # points that share one compiled design.
        spec = SweepSpec(
            name="pairs",
            base=StencilProblem.paper_example(11, 11),
            grid_sizes=((11, 11), (13, 13), (15, 15), (17, 17)),
            backends=("analytic", "cost"),
            iterations=1,
        )
        from repro.sweep.runners import cost_balanced_chunks

        points = spec.expand()
        chunks = cost_balanced_chunks(points, n_chunks=4)
        # A chunk never starts mid-problem: each boundary separates two
        # points belonging to different problems.
        boundaries = [
            (chunks[i][-1].problem, chunks[i + 1][0].problem)
            for i in range(len(chunks) - 1)
        ]
        assert all(prev != nxt for prev, nxt in boundaries)

    def test_more_chunks_than_points_degrades_gracefully(self):
        from repro.sweep.runners import cost_balanced_chunks

        points = smoke_spec(iterations=1).expand()[:3]
        chunks = cost_balanced_chunks(points, n_chunks=16)
        assert len(chunks) == 3

    def test_cost_aware_default_is_still_byte_identical(self, points):
        serial = SerialRunner().run(points)
        parallel = ProcessPoolRunner(jobs=3).run(points)  # no chunksize: cost-aware
        assert canonical_json(parallel) == canonical_json(serial)

    def test_explicit_chunksize_restores_fixed_chunks(self, points):
        runner = ProcessPoolRunner(jobs=2, chunksize=5)
        chunks = runner._chunk(list(points), jobs=2)
        assert [len(c) for c in chunks[:-1]] == [5] * (len(chunks) - 1)
