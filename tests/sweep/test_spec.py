"""Tests for declarative sweep specs and stable point keys."""

import pytest

from repro.core.partition import StreamBufferMode
from repro.pipeline import EvaluationRequest, StencilProblem
from repro.sweep.spec import SweepPoint, SweepSpec, _parse_grid_list, _parse_reach_list


def small_spec(**overrides):
    kwargs = dict(
        name="t",
        base=StencilProblem.paper_example(11, 11),
        grid_sizes=((11, 11), (16, 16)),
        max_stream_reaches=(0, None),
        backends=("analytic",),
        iterations=2,
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestSweepSpec:
    def test_expansion_is_the_axis_product(self):
        spec = small_spec(modes=(StreamBufferMode.HYBRID, StreamBufferMode.REGISTER_ONLY))
        points = spec.expand()
        assert len(points) == 2 * 2 * 2
        assert spec.size == len(points)

    def test_expansion_order_is_deterministic(self):
        a = [p.key() for p in small_spec().expand()]
        b = [p.key() for p in small_spec().expand()]
        assert a == b

    def test_point_names_are_unique(self):
        spec = small_spec(modes=(StreamBufferMode.HYBRID, StreamBufferMode.REGISTER_ONLY))
        names = [p.problem.name for p in spec.expand()]
        assert len(set(names)) == len(names)

    def test_keys_are_unique(self):
        spec = small_spec(
            modes=(StreamBufferMode.HYBRID, StreamBufferMode.REGISTER_ONLY),
            systems=("smache", "baseline"),
        )
        keys = [p.key() for p in spec.expand()]
        assert len(set(keys)) == len(keys)

    def test_explicit_problem_list(self):
        problems = [StencilProblem.paper_example(7, 9), StencilProblem.paper_example(9, 7)]
        spec = SweepSpec.from_problems(problems, name="explicit")
        assert [p.problem for p in spec.expand()] == problems

    def test_needs_base_or_problems(self):
        with pytest.raises(ValueError):
            SweepSpec(name="empty")

    def test_fingerprint_is_stable_and_axis_sensitive(self):
        assert small_spec().fingerprint() == small_spec().fingerprint()
        assert small_spec().fingerprint() != small_spec(iterations=3).fingerprint()
        assert (
            small_spec().fingerprint()
            != small_spec(max_stream_reaches=(0, 4, None)).fingerprint()
        )

    def test_describe_mentions_size_and_backends(self):
        text = small_spec().describe()
        assert "4 points" in text and "analytic" in text


class TestSweepPointKeys:
    def test_key_depends_on_backend_and_request(self):
        problem = StencilProblem.paper_example(11, 11)
        base = SweepPoint(problem=problem)
        assert base.key() == SweepPoint(problem=problem).key()
        assert base.key() != SweepPoint(problem=problem, backend="simulate").key()
        assert (
            base.key()
            != SweepPoint(problem=problem, request=EvaluationRequest(iterations=5)).key()
        )
        assert base.key() != SweepPoint(problem=problem, rung=1).key()

    def test_key_hashes_explicit_input_grids(self):
        import numpy as np

        problem = StencilProblem.paper_example(7, 9)
        g1 = np.zeros((7, 9))
        g2 = np.ones((7, 9))
        k1 = SweepPoint(problem=problem, request=EvaluationRequest(input_grid=g1)).key()
        k2 = SweepPoint(problem=problem, request=EvaluationRequest(input_grid=g2)).key()
        assert k1 != k2

    def test_display_label_defaults_to_problem_name(self):
        problem = StencilProblem.paper_example(11, 11)
        assert SweepPoint(problem=problem).display_label == problem.name
        assert SweepPoint(problem=problem, label="x").display_label == "x"


class TestCliParsers:
    def test_parse_grid_list(self):
        assert _parse_grid_list("11x11, 16x24") == ((11, 11), (16, 24))
        with pytest.raises(ValueError):
            _parse_grid_list(" , ")

    def test_parse_reach_list(self):
        assert _parse_reach_list("0,4,none") == (0, 4, None)
        with pytest.raises(ValueError):
            _parse_reach_list("")
