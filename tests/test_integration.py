"""End-to-end integration tests: the public API flows a user would follow."""

import numpy as np
import pytest

import repro
from repro import SmacheConfig
from repro.arch.system import run_smache
from repro.core.partition import StreamBufferMode
from repro.dse import explore_partitions, minimise_registers, select_best
from repro.fpga.device import stratix_v
from repro.fpga.synthesis import synthesize_smache
from repro.reference import AveragingKernel, reference_run
from repro.reference.stencil_exec import make_test_grid


class TestPublicAPI:
    def test_top_level_exports(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_quickstart_flow(self):
        """The README quickstart: configure, plan, estimate, simulate, validate."""
        config = SmacheConfig.paper_example()
        analysis = config.analysis()
        assert analysis.n_static_buffers == 2

        cost = config.cost_estimate()
        assert cost.b_total_bits > 0

        kernel = AveragingKernel()
        grid_in = make_test_grid(config.grid, kind="ramp")
        sim = run_smache(config, grid_in, iterations=5, kernel=kernel)
        ref = reference_run(
            grid_in, config.grid, config.stencil, config.boundary, kernel, iterations=5
        )
        np.testing.assert_allclose(sim.output, ref)

    def test_dse_flow(self):
        """The DSE example flow: sweep, select, synthesise the winner."""
        config = SmacheConfig.paper_example(128, 128)
        points = explore_partitions(config, device=stratix_v(), steps=4)
        best = select_best(points, minimise_registers)
        assert best is not None
        report = synthesize_smache(best.config, plan=best.plan, partition=best.partition)
        assert report.fmax_mhz > 100

    def test_structural_reuse_flow(self):
        """Two-layer customisation: hardware planned for the paper case hosts a
        bigger grid with the same structure (parameter-only change)."""
        small = SmacheConfig.paper_example(11, 11)
        large = SmacheConfig.paper_example(201, 301)
        assert small.is_structurally_compatible(large)
        assert small.structural_signature()["n_static_buffers"] == 2

    def test_mode_switch_only_changes_resource_split(self):
        config_h = SmacheConfig.paper_example(64, 64)
        config_r = SmacheConfig.paper_example(64, 64, mode=StreamBufferMode.REGISTER_ONLY)
        kernel = AveragingKernel()
        grid_in = make_test_grid(config_h.grid, kind="random")
        out_h = run_smache(config_h, grid_in, iterations=1, kernel=kernel)
        out_r = run_smache(config_r, grid_in, iterations=1, kernel=kernel)
        np.testing.assert_allclose(out_h.output, out_r.output)
        assert out_h.cycles == out_r.cycles  # the mapping does not change timing
        assert config_h.cost_estimate().r_total_bits < config_r.cost_estimate().r_total_bits


class TestEvalCLI:
    def test_main_runs_selected_experiment(self, capsys, tmp_path):
        from repro.eval.__main__ import main

        out_file = tmp_path / "report.txt"
        code = main(["ablation-planner", "--output", str(out_file)])
        assert code == 0
        captured = capsys.readouterr()
        assert "planner" in captured.out.lower() or "strategy" in captured.out.lower()
        assert out_file.exists()

    def test_main_rejects_unknown_experiment(self, capsys):
        from repro.eval.__main__ import main

        with pytest.raises(SystemExit):
            main(["bogus-experiment"])
