"""Additional coverage for smaller APIs: units, results, error paths."""

import numpy as np
import pytest

from repro.arch.kernel import KernelResult, TupleData
from repro.arch.smache import SmacheFrontEnd
from repro.arch.system import SimulationResult
from repro.core.boundary import BoundarySpec
from repro.core.config import SmacheConfig
from repro.core.grid import GridSpec
from repro.core.planner import plan_buffers
from repro.core.stencil import StencilShape
from repro.eval.figure2 import Figure2Row
from repro.eval.paper_constants import relative_error
from repro.sim.engine import SimulationError, Simulator
from repro.utils.units import mhz, microseconds


class TestUnits:
    def test_mhz(self):
        assert mhz(1e6) == 1.0
        assert mhz(372.9e6) == pytest.approx(372.9)

    def test_microseconds(self):
        assert microseconds(1e-6) == pytest.approx(1.0)
        assert microseconds(0.0001716) == pytest.approx(171.6)


class TestRelativeError:
    def test_zero_paper_zero_measured(self):
        assert relative_error(0, 0) == 0.0

    def test_zero_paper_nonzero_measured(self):
        assert relative_error(5, 0) == float("inf")

    def test_symmetric_magnitude(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(90, 100) == pytest.approx(0.1)


class TestSimulationResult:
    def make_result(self, cycles=1000, ops=400):
        return SimulationResult(
            design="smache",
            cycles=cycles,
            iterations=2,
            grid_points=100,
            dram_words_read=220,
            dram_words_written=200,
            dram_bytes=1680,
            operations=ops,
            output=np.zeros((10, 10)),
        )

    def test_traffic_kib(self):
        assert self.make_result().dram_traffic_kib == pytest.approx(1680 / 1024)

    def test_cycles_per_point(self):
        assert self.make_result(cycles=500).cycles_per_point == pytest.approx(2.5)

    def test_mops_definition(self):
        result = self.make_result(cycles=2000, ops=800)
        # 2000 cycles at 200 MHz = 10 us; 800 ops / 10 us = 80 MOPS
        assert result.execution_time_us(200) == pytest.approx(10.0)
        assert result.mops(200) == pytest.approx(80.0)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            self.make_result().execution_time_us(-1)


class TestFigure2Row:
    def test_as_dict_round_trip(self):
        row = Figure2Row(
            design="smache",
            cycle_count=14039,
            freq_mhz=235.3,
            dram_traffic_kib=95.5,
            exec_time_us=59.7,
            mops=811.21,
        )
        d = row.as_dict()
        assert d["cycle_count"] == 14039
        assert set(d) == {"cycle_count", "freq_mhz", "dram_traffic_kib", "exec_time_us", "mops"}


class TestTupleDataAndResults:
    def test_tuple_data_operand_count(self):
        t = TupleData(index=3, offsets=((0, 1), (1, 0)), values=(1.0, 2.0))
        assert t.n_operands == 2

    def test_kernel_result_fields(self):
        r = KernelResult(index=7, value=3.5)
        assert (r.index, r.value) == (7, 3.5)


class TestSmacheErrorPaths:
    def test_inconsistent_plan_raises_at_simulation_time(self):
        """If the plan's static buffers do not cover an offloaded access, the
        front-end reports a planning inconsistency instead of silently
        producing wrong data."""
        grid = GridSpec(shape=(6, 6))
        stencil = StencilShape.four_point_2d()
        boundary = BoundarySpec.paper_2d()
        plan = plan_buffers(grid, stencil, boundary)
        # Sabotage the plan: drop every static buffer.
        from dataclasses import replace

        broken = replace(plan, statics=())
        sim = Simulator()
        front_end = SmacheFrontEnd(sim, broken)
        front_end.start_work_instance(1)  # no prefetch needed without statics
        # Feed the stream and let it try to assemble the first tuple (whose
        # north neighbour wraps to the last row and needs a static buffer).
        with pytest.raises(SimulationError):
            fed = 0
            for _ in range(200):
                if front_end.stream_in.can_push() and fed < grid.size:
                    front_end.stream_in.push(float(fed))
                    fed += 1
                if front_end.tuple_out.can_pop():
                    front_end.tuple_out.pop()
                sim.step()

    def test_excess_prefetch_words_are_not_consumed(self, paper_config):
        """Once the warm-up is complete FSM-1 goes DONE; surplus prefetch data
        backs up in the channel instead of corrupting the static buffers."""
        plan = paper_config.plan()
        sim = Simulator()
        front_end = SmacheFrontEnd(sim, plan)
        front_end.start_work_instance(0)
        total = sum(s.length for s in plan.statics)
        pushed = 0
        for _ in range(4 * (total + 10)):
            if pushed < total + 4 and front_end.prefetch_in.can_push():
                front_end.prefetch_in.push(1.0)
                pushed += 1
            sim.step()
        assert all(s.prefetch_complete for s in front_end.statics)
        assert front_end.fsm_prefetch.is_in("DONE")
        assert front_end.prefetch_in.occupancy > 0  # the surplus was left alone
        assert sum(s.prefetched_words for s in front_end.statics) == total


class TestConfigValidationEdges:
    def test_boundary_grid_dimension_mismatch_fails_at_planning(self):
        config = SmacheConfig(
            grid=GridSpec(shape=(8, 8)),
            stencil=StencilShape.four_point_2d(),
            boundary=BoundarySpec.all_open(3),
        )
        with pytest.raises(ValueError):
            config.plan()

    def test_stencil_grid_dimension_mismatch(self):
        config = SmacheConfig(
            grid=GridSpec(shape=(8, 8)),
            stencil=StencilShape.von_neumann(3, 1),
            boundary=BoundarySpec.all_open(2),
        )
        with pytest.raises(ValueError):
            config.plan()
