"""Tests for repro.utils: units, validation and table formatting."""

import pytest

from repro.utils.tables import format_key_values, format_table
from repro.utils.units import Quantity, bits_to_bytes, bytes_to_kib, kib, mib
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_shape,
    check_unique,
)


class TestUnits:
    def test_bits_to_bytes(self):
        assert bits_to_bytes(32) == 4
        assert bits_to_bytes(4) == 0.5

    def test_bytes_to_kib_matches_paper_arithmetic(self):
        # 242000 bytes is the baseline traffic of Fig. 2 -> 236.3 "KB"
        assert bytes_to_kib(242000) == pytest.approx(236.3, abs=0.05)

    def test_kib_mib(self):
        assert kib(1) == 1024
        assert mib(2) == 2 * 1024 * 1024

    def test_quantity_formatting(self):
        q = Quantity(236.328, "KiB")
        assert "KiB" in str(q)
        assert f"{q:.1f}" == "236.3 KiB"


class TestValidation:
    def test_check_positive_accepts_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.5)

    def test_check_positive_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", -1)

    def test_check_non_negative(self):
        check_non_negative("x", 0)
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)

    def test_check_in_range(self):
        check_in_range("x", 5, 0, 10)
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)

    def test_check_shape_valid(self):
        check_shape("shape", (3, 4))

    def test_check_shape_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            check_shape("shape", ())
        with pytest.raises(ValueError):
            check_shape("shape", (1, 2, 3, 4, 5))

    def test_check_shape_rejects_non_integers(self):
        with pytest.raises(ValueError):
            check_shape("shape", (3.5, 4))

    def test_check_unique(self):
        check_unique("items", [1, 2, 3])
        with pytest.raises(ValueError):
            check_unique("items", [1, 2, 1])


class TestTables:
    def test_format_table_alignment_and_title(self):
        text = format_table(["a", "b"], [[1, 2], [30, 4000.0]], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[2] and "b" in lines[2]
        assert "4,000" in text  # large floats get a thousands separator

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_table_floats(self):
        text = format_table(["x"], [[3.14159]])
        assert "3.142" in text

    def test_format_key_values(self):
        text = format_key_values({"cycles": 123, "traffic": 4.5})
        assert "cycles" in text and "123" in text

    def test_format_key_values_empty(self):
        assert format_key_values({}) == ""
